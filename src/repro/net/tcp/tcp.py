"""User-level TCP: a library-based implementation of RFC 793.

Like the paper's, this is a real-but-lean TCP: three-way handshake,
sequence/ack bookkeeping, a fixed-size window (8 Kbytes in the
benchmarks, "to ensure experiment repeatability"), header prediction on
the receive path, go-back-N retransmission on a coarse timer, and a
simplified close.  "We stress that the TCP implementation is not fully
TCP compliant (it lacks support for fluent internetworking such as fast
retransmit, fast recovery, and good buffering strategies)."

The configuration knobs map to Table II's rows:

* ``checksum=False`` — rely on the AN2 CRC;
* ``in_place=True`` — data is used where it landed: the library charges
  no copy when placing payload (otherwise one copy network buffer ->
  receive ring, the paper's "additional copy between the network and
  application data structures");
* ``interrupt_driven`` — block on the ring instead of polling.

The receive fast path can be hoisted into the kernel:
:meth:`TcpConnection.install_fastpath` downloads the VCODE handler from
:mod:`repro.net.tcp.fastpath` as an ASH or registers it as an upcall,
reproducing Table VI's five columns.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional, TYPE_CHECKING

from ...ash.interface import AshNotification
from ...errors import ProtocolError, SocketError
from ...hw.nic.base import RxDescriptor
from ...kernel.dpf import Predicate
from ...kernel.upcall import UpcallHandler
from ...sim.queues import TimerWheel
from ...sim.units import us
from ..checksum import le_word_sum
from ..headers import (
    ETHERTYPE_IP,
    IPPROTO_TCP,
    Ipv4Header,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    TcpHeader,
    pseudo_header,
)
from ..stack import NetStack
from .segment import ParsedSegment, build_segment, parse_segment
from .tcb import MASK32, SharedTcb, SHARED_TCB_SIZE, Tcb, TcpState, seq_lt, seq_lte

if TYPE_CHECKING:  # pragma: no cover
    from ...kernel.process import Process

__all__ = ["TcpConnection"]

#: default retransmission timeout (coarse, as in 1990s BSD stacks);
#: override per connection with ``rto_us=``
RTO_US = 50_000.0
#: handshake retry limit
MAX_SYN_TRIES = 5
#: consecutive no-progress retransmission rounds before giving up
MAX_REXMIT_ROUNDS = 30
#: retransmission-timeout backoff cap (the RTO doubles on every
#: no-progress round up to rto_us * MAX_RTO_BACKOFF, then holds)
MAX_RTO_BACKOFF = 8
#: duplicate ACKs that trigger a fast retransmit of the oldest segment
DUP_ACK_THRESHOLD = 3


class TcpConnection:
    """One TCP connection endpoint."""

    def __init__(
        self,
        stack: NetStack,
        local_port: int,
        remote_ip: int,
        remote_port: int,
        rx_vci: Optional[int] = None,
        checksum: bool = True,
        in_place: bool = False,
        mss: Optional[int] = None,
        window: int = 8192,
        recv_buf_size: int = 65536,
        interrupt_driven: bool = False,
        iss: int = 1000,
        rto_us: float = RTO_US,
        max_rexmit_rounds: int = MAX_REXMIT_ROUNDS,
        name: Optional[str] = None,
    ):
        if recv_buf_size & (recv_buf_size - 1):
            raise SocketError("recv_buf_size must be a power of two")
        self.stack = stack
        self.kernel = stack.kernel
        self.cal = stack.kernel.cal
        self.tel = stack.kernel.node.telemetry
        self.checksum = checksum
        self.in_place = in_place
        self.interrupt_driven = interrupt_driven
        self.rto_us = rto_us
        self.max_rexmit_rounds = max_rexmit_rounds
        self.handler_mode: Optional[str] = None
        name = name or f"tcp{local_port}"
        self.name = name

        if mss is None:
            mss = (self.cal.an2_mtu if stack.is_an2 else self.cal.eth_mtu) - 40
            # the paper uses round MSS values: 3072 on AN2, 1500-40 on eth
            if stack.is_an2:
                mss = self.cal.an2_mtu
        self._dst_mac: Optional[bytes] = None

        mem = self.kernel.node.memory
        shared_region = mem.alloc(f"{name}.shared", SHARED_TCB_SIZE)
        self._ring_region = mem.alloc(f"{name}.ring", recv_buf_size)
        self._tmpl_region = mem.alloc(f"{name}.acktmpl", 64)
        self._staging = mem.alloc(f"{name}.staging", 128 * 1024)
        self._app_out = mem.alloc(f"{name}.appout", 64 * 1024)

        shared = SharedTcb(mem, shared_region.base)
        shared.buf_base = self._ring_region.base
        shared.buf_mask = recv_buf_size - 1
        shared.buf_size = recv_buf_size
        self.tcb = Tcb(
            local_port=local_port,
            remote_port=remote_port,
            local_ip=stack.ip,
            remote_ip=remote_ip,
            shared=shared,
            iss=iss,
            rcv_wnd=window,
            snd_wnd=window,
            mss=mss,
        )
        self.tcb.timers = TimerWheel(self.kernel.engine, name=name)
        #: per-flow SLO stats, keyed by the 4-tuple.  Created eagerly so
        #: the cached instruments stay valid across enable()/disable()
        #: flips; every recording call is a no-op branch while disabled.
        self.flow = (self.tcb.local_ip, self.tcb.local_port,
                     self.tcb.remote_ip, self.tcb.remote_port)
        self._flow = self.tel.slo.flow(self.flow)
        self._unacked: deque[tuple[int, bytes]] = deque()  # (seq, payload)
        self._dup_ack_count = 0   #: consecutive duplicate ACKs seen
        self._rto_backoff = 1     #: current RTO multiplier (exponential)
        self._last_send_ticks = 0
        self._inplace_spans: deque[tuple[int, int]] = deque()
        self.peer_fin = False

        if stack.is_an2:
            if rx_vci is None:
                raise SocketError("AN2 TCP connections need an rx_vci")
            # "the TCP implementation uses the virtual circuit identifier
            # and the ports in the protocol header to demultiplex"
            self.endpoint = self.kernel.create_endpoint_an2(
                stack.nic, rx_vci, name=name, buf_size=self.cal.an2_max_packet,
            )
        else:
            self.endpoint = self.kernel.create_endpoint_eth(
                stack.nic,
                [
                    Predicate(offset=12, size=2, value=ETHERTYPE_IP),
                    Predicate(offset=14 + 9, size=1, value=IPPROTO_TCP),
                    Predicate(offset=14 + 20 + 2, size=2, value=local_port),
                ],
                name=name,
            )

    # ------------------------------------------------------------------
    # connection establishment
    # ------------------------------------------------------------------
    def connect(self, proc: "Process") -> Generator:
        """Active open: SYN -> SYN+ACK -> ACK."""
        tcb = self.tcb
        sh = tcb.shared
        self.endpoint.owner = proc
        if not self.stack.is_an2:
            self._dst_mac = yield from self.stack.resolve_mac(
                proc, tcb.remote_ip
            )
        tcb.state = TcpState.SYN_SENT
        tcb.snd_nxt = tcb.iss
        sh.snd_una = tcb.iss
        for _try in range(MAX_SYN_TRIES):
            yield from self._send_flags(proc, TCP_SYN, seq=tcb.iss, ack=0)
            got = yield from self._pump(proc, timeout_us=self.rto_us)
            if got and tcb.state is TcpState.ESTABLISHED:
                return
            while tcb.state is not TcpState.ESTABLISHED:
                got = yield from self._pump(proc, timeout_us=self.rto_us)
                if not got:
                    break
            if tcb.state is TcpState.ESTABLISHED:
                return
        raise ProtocolError(f"{self.name}: connect timed out")

    def accept(self, proc: "Process") -> Generator:
        """Passive open: wait for SYN, answer SYN+ACK, await the ACK."""
        tcb = self.tcb
        self.endpoint.owner = proc
        tcb.state = TcpState.LISTEN
        while tcb.state is not TcpState.ESTABLISHED:
            got = yield from self._pump(proc, timeout_us=self.rto_us)
            if not got and tcb.state is TcpState.SYN_RCVD:
                # retransmit our SYN+ACK
                yield from self._send_flags(
                    proc, TCP_SYN | TCP_ACK, seq=tcb.iss, ack=tcb.shared.rcv_nxt
                )

    # ------------------------------------------------------------------
    # data transfer
    # ------------------------------------------------------------------
    def write(self, proc: "Process", data: bytes) -> Generator:
        """Synchronous send: returns once every byte is acknowledged
        ("the write call is synchronous — write waits for an
        acknowledgment before returning")."""
        tcb = self.tcb
        sh = tcb.shared
        if tcb.state is not TcpState.ESTABLISHED:
            raise SocketError(f"{self.name}: write on {tcb.state.value}")
        target = (tcb.snd_nxt + len(data)) & MASK32
        offset = 0
        stale_rounds = 0
        last_una = sh.snd_una
        write_start = proc.engine.now
        while seq_lt(sh.snd_una, target):
            sh.lib_busy = 1
            # fill the window
            while offset < len(data):
                chunk = min(tcb.mss, len(data) - offset, tcb.send_window_open)
                if chunk <= 0:
                    break
                payload = data[offset:offset + chunk]
                push = offset + chunk >= len(data)
                yield from self._send_data(proc, payload, push)
                offset += chunk
            sh.lib_busy = 0
            if not seq_lt(sh.snd_una, target):
                break
            got = yield from self._pump(
                proc, timeout_us=self.rto_us * self._rto_backoff
            )
            if not got:
                yield from self._retransmit(proc)
                # back off exponentially while nothing is getting through
                self._rto_backoff = min(self._rto_backoff * 2, MAX_RTO_BACKOFF)
            if sh.snd_una == last_una:
                stale_rounds += 1
                if stale_rounds > self.max_rexmit_rounds:
                    raise self._peer_dead("write")
            else:
                stale_rounds = 0
                last_una = sh.snd_una
        if self.tel.enabled:
            # sender-side flow latency: first byte handed to the stack
            # until the last byte of this write was acknowledged
            now = proc.engine.now
            self._flow.observe_latency_us((now - write_start) / 1e6, now)
            self._flow.goodput(len(data))
        yield from proc.compute_us(self.cal.tcp_sync_write_us)

    def read(self, proc: "Process", n: int) -> Generator:
        """Read exactly ``n`` bytes (fewer only at EOF)."""
        tcb = self.tcb
        sh = tcb.shared
        mem = self.kernel.node.memory
        out = bytearray()
        stale_rounds = 0
        while len(out) < n:
            avail = sh.available
            if avail:
                sh.lib_busy = 1
                take = min(avail, n - len(out))
                pos = sh.read_count & sh.buf_mask
                first = min(take, sh.buf_size - pos)
                out += mem.read(sh.buf_base + pos, first)
                if take > first:
                    out += mem.read(sh.buf_base, take - first)
                sh.read_count = (sh.read_count + take) & MASK32
                sh.lib_busy = 0
                if self.tel.enabled:
                    # receiver-side goodput: bytes delivered to the app
                    self._flow.goodput(take)
                if not self.in_place and self.handler_mode is None:
                    # the read-interface copy into application data
                    # structures (skipped "in place", and when a handler
                    # already placed the data in the right place)
                    dst = self._app_out.base
                    cycles = self.stack.datapath.copy(
                        sh.buf_base + pos, dst, min(first, self._app_out.size)
                    )
                    if take > first:
                        cycles += self.stack.datapath.copy(
                            sh.buf_base, dst,
                            min(take - first, self._app_out.size),
                        )
                    yield from proc.compute(cycles)
                yield from proc.compute_us(self.cal.tcp_read_wakeup_us)
                continue
            if self.peer_fin:
                break
            got = yield from self._pump(
                proc, timeout_us=self.rto_us * self._rto_backoff
            )
            if not got:
                yield from self._retransmit(proc)
                if self._unacked:
                    # we are owed an acknowledgment and nothing moves:
                    # back off, and bound the wait so a dead peer surfaces
                    # as an error instead of an infinite read
                    self._rto_backoff = min(
                        self._rto_backoff * 2, MAX_RTO_BACKOFF
                    )
                    stale_rounds += 1
                    if stale_rounds > self.max_rexmit_rounds:
                        raise self._peer_dead("read")
            else:
                stale_rounds = 0
        return bytes(out)

    def _peer_dead(self, where: str) -> ProtocolError:
        """Build the bounded-retransmission give-up error.

        It carries everything a post-mortem needs without a re-run: the
        flow 4-tuple (``.flow``), the final shared-TCB fields
        (``.tcb_final``) and the raw block (``.tcb_blob``).
        """
        tcb = self.tcb
        flow = (tcb.local_ip, tcb.local_port, tcb.remote_ip, tcb.remote_port)
        final = tcb.shared.fields()
        err = ProtocolError(
            f"{self.name}: peer unresponsive in {where} "
            f"({self.max_rexmit_rounds} retransmission rounds with no "
            f"acknowledgment progress); flow "
            f"{flow[0]:#010x}:{flow[1]} -> {flow[2]:#010x}:{flow[3]}, "
            f"snd_una={final['snd_una']} snd_nxt={tcb.snd_nxt} "
            f"rcv_nxt={final['rcv_nxt']} state={tcb.state.value}"
        )
        err.flow = flow
        err.tcb_final = final
        err.tcb_blob = tcb.shared.snapshot()
        if self.tel.enabled:
            now = self.kernel.engine.now
            self._flow.abort(now)
            self.tel.flight.record(
                "protocol_error", now, conn=self.name, where=where,
                flow=self._flow.label,
            )
            self.tel.flight.dump("protocol_error", now, conn=self.name,
                                 where=where)
        return err

    def linger(self, proc: "Process", duration_us: float = 100_000.0) -> Generator:
        """Keep servicing the connection for a while after the
        application is done with it.

        A user-level TCP has no kernel socket to answer late
        retransmissions once the process stops calling read/write; this
        is the TIME_WAIT-ish tail that acknowledges a peer whose final
        ack was lost.
        """
        engine = proc.engine
        deadline = engine.now + us(duration_us)
        while engine.now < deadline:
            remaining = (deadline - engine.now) / us(1.0)
            got = yield from self._pump(proc, timeout_us=remaining)
            if not got:
                return

    def close(self, proc: "Process") -> Generator:
        """Simplified close: FIN, await its ack (and ack the peer's)."""
        tcb = self.tcb
        sh = tcb.shared
        if tcb.state is not TcpState.ESTABLISHED:
            return
        tcb.state = TcpState.FIN_WAIT_1
        fin_seq = tcb.snd_nxt
        yield from self._send_flags(
            proc, TCP_FIN | TCP_ACK, seq=fin_seq, ack=sh.rcv_nxt
        )
        tcb.snd_nxt = (tcb.snd_nxt + 1) & MASK32
        sh.ack_seq = tcb.snd_nxt
        deadline = 10
        while seq_lt(sh.snd_una, tcb.snd_nxt) and deadline > 0:
            got = yield from self._pump(proc, timeout_us=self.rto_us)
            if not got:
                deadline -= 1
                yield from self._send_flags(
                    proc, TCP_FIN | TCP_ACK, seq=fin_seq, ack=sh.rcv_nxt
                )
        tcb.state = TcpState.CLOSED

    # ------------------------------------------------------------------
    # the receive pump
    # ------------------------------------------------------------------
    def _pump(self, proc: "Process", timeout_us: Optional[float] = None) -> Generator:
        """Wait for one network event and process it.

        Returns True if an event was handled, False on timeout.
        """
        if timeout_us is None:
            timeout_us = self.rto_us
        ring = self.endpoint.ring
        kernel = self.kernel
        engine = proc.engine
        timers = self.tcb.timers
        if self.interrupt_driven:
            ok, item = ring.try_get()
            if not ok:
                get_ev = ring.get()
                # arm through the wheel: if data wins the race the
                # timer is cancelled outright instead of left to fire
                # as a dead event (tombstone churn at scale)
                timeout = timers.after(us(timeout_us))
                result = yield from proc.block_on(
                    engine.any_of([get_ev, timeout])
                )
                if get_ev in result:
                    timers.cancel(timeout)
                    item = result[get_ev]
                else:
                    ring.cancel_get(get_ev)
                    return False
        else:
            # Polling receiver, modelled event-driven (see Process.poll):
            # discovery happens one poll-check after arrival, while
            # scheduled.
            ok, item = ring.try_get()
            if not ok:
                get_ev = ring.get()
                timeout = timers.after(us(timeout_us))
                result = yield from proc.block_on(
                    engine.any_of([get_ev, timeout])
                )
                if get_ev in result:
                    timers.cancel(timeout)
                    item = result[get_ev]
                else:
                    ring.cancel_get(get_ev)
                    return False
            yield from proc.compute_us(self.cal.poll_check_us)
        if isinstance(item, AshNotification):
            # data/acks were handled in the kernel; we were only woken
            yield from proc.compute_us(2.0)
            return True
        yield from proc.compute_us(self.cal.user_recv_path_us)
        yield from self._process_desc(proc, item)
        return True

    def _process_desc(self, proc: "Process", desc: RxDescriptor) -> Generator:
        tcb = self.tcb
        sh = tcb.shared
        cal = self.cal
        mem = self.kernel.node.memory
        sh.lib_busy = 1
        tracker = self.tel.spans
        prev_active = tracker.active
        try:
            # fast substrate: raw is a zero-copy view of the receive
            # buffer; everything parsed from it is consumed (written
            # into the ring) before the replenish below recycles it
            ip_addr, ip_len, raw = self.stack.read_ip_packet(desc)
            span = desc.meta.get("span")
            if span is not None:
                span.stage("tcp_segment", proc.engine.now)
                # while this segment is being processed it is the node's
                # active delivery: ACKs and replies sent from here carry
                # its causal lineage in their trace context
                tracker.active = span
            if self.tel.enabled:
                self.tel.counter("tcp.rx_segments", conn=self.name).inc()
                self._flow.rx_segment(ip_len)
                self.kernel.node.trace(
                    "tcp.rx_segment", lambda: {"conn": self.name, "len": ip_len}
                )
            try:
                seg = parse_segment(raw, ip_addr)
            except ProtocolError:
                yield from proc.compute_us(cal.tcp_recv_slow_us)
                return
            if (seg.tcp.dst_port != tcb.local_port
                    or seg.tcp.src_port != tcb.remote_port):
                return  # not this connection's segment

            predicted = (
                tcb.state is TcpState.ESTABLISHED
                and seg.tcp.flags in (TCP_ACK, TCP_ACK | TCP_PSH)
                and seg.tcp.seq == sh.rcv_nxt
            )
            if predicted:
                tcb.hdrpred_hits += 1
                yield from proc.compute_us(cal.tcp_recv_hdrpred_us)
            else:
                tcb.slow_segments += 1
                yield from proc.compute_us(cal.tcp_recv_slow_us)

            if self.checksum and seg.tcp.checksum:
                _, cycles = self.stack.datapath.checksum(
                    ip_addr + Ipv4Header.SIZE, ip_len - Ipv4Header.SIZE
                )
                yield from proc.compute(cycles)
                yield from proc.compute_us(cal.cksum_fixed_us)
                tcp_and_payload = raw[Ipv4Header.SIZE:seg.ip.total_length]
                if not TcpHeader.verify(seg.ip.src, seg.ip.dst, tcp_and_payload):
                    # corrupt: drop-and-count; the sender's timer recovers
                    tcb.checksum_failures += 1
                    if self.tel.enabled:
                        self.tel.counter("tcp.checksum_failures",
                                         conn=self.name).inc()
                        self._flow.loss(proc.engine.now)
                    return

            yield from self._segment_arrived(proc, seg)
        finally:
            tracker.active = prev_active
            sh.lib_busy = 0
            yield from self.kernel.sys_replenish(proc, self.endpoint, desc)

    def _segment_arrived(self, proc: "Process", seg: ParsedSegment) -> Generator:
        tcb = self.tcb
        sh = tcb.shared
        flags = seg.tcp.flags
        state = tcb.state

        if flags & TCP_RST:
            tcb.state = TcpState.CLOSED
            return

        # -- handshake states -------------------------------------------
        if state is TcpState.LISTEN and flags & TCP_SYN:
            tcb.irs = seg.tcp.seq
            sh.rcv_nxt = (seg.tcp.seq + 1) & MASK32
            tcb.snd_nxt = tcb.iss
            sh.snd_una = tcb.iss
            tcb.state = TcpState.SYN_RCVD
            yield from self._send_flags(
                proc, TCP_SYN | TCP_ACK, seq=tcb.iss, ack=sh.rcv_nxt
            )
            tcb.snd_nxt = (tcb.iss + 1) & MASK32
            sh.ack_seq = tcb.snd_nxt
            return
        if state is TcpState.SYN_SENT and flags & TCP_SYN and flags & TCP_ACK:
            if seg.tcp.ack != (tcb.iss + 1) & MASK32:
                return
            tcb.irs = seg.tcp.seq
            sh.rcv_nxt = (seg.tcp.seq + 1) & MASK32
            tcb.snd_nxt = (tcb.iss + 1) & MASK32
            sh.snd_una = tcb.snd_nxt
            sh.ack_seq = tcb.snd_nxt
            tcb.snd_wnd = seg.tcp.window
            tcb.state = TcpState.ESTABLISHED
            yield from self._send_ack(proc)
            return
        if state is TcpState.SYN_RCVD and flags & TCP_ACK and not flags & TCP_SYN:
            if seg.tcp.ack == (tcb.iss + 1) & MASK32:
                sh.snd_una = seg.tcp.ack
                tcb.snd_wnd = seg.tcp.window
                tcb.state = TcpState.ESTABLISHED
            # fall through: the segment may carry data too

        # -- established-path ACK bookkeeping -----------------------------
        if flags & TCP_ACK:
            ack = seg.tcp.ack
            if seq_lt(sh.snd_una, ack) and seq_lte(ack, tcb.snd_nxt):
                sh.snd_una = ack
                while self._unacked and seq_lte(
                    (self._unacked[0][0] + len(self._unacked[0][1])) & MASK32,
                    ack,
                ):
                    self._unacked.popleft()
                # forward progress: the path works again
                self._dup_ack_count = 0
                self._rto_backoff = 1
            elif (
                ack == sh.snd_una
                and self._unacked
                and not seg.payload_len
                and not flags & (TCP_SYN | TCP_FIN)
            ):
                # pure duplicate ACK: the receiver is signalling a hole.
                # After three in a row, resend the oldest unacknowledged
                # segment immediately instead of waiting out the RTO.
                tcb.dup_acks_rcvd += 1
                self._dup_ack_count += 1
                if self._dup_ack_count == DUP_ACK_THRESHOLD:
                    self._dup_ack_count = 0
                    tcb.fast_retransmits += 1
                    if self.tel.enabled:
                        self.tel.counter("tcp.fast_retransmits",
                                         conn=self.name).inc()
                        self._flow.retransmit(proc.engine.now)
                    rseq, rpayload = self._unacked[0]
                    yield from self._send_data(
                        proc, rpayload, push=True, seq=rseq, rexmit=True
                    )
            tcb.snd_wnd = seg.tcp.window

        # -- data ----------------------------------------------------------
        if seg.payload_len:
            yield from self._accept_data(proc, seg)

        # -- FIN ----------------------------------------------------------
        if flags & TCP_FIN and seg.tcp.seq == sh.rcv_nxt or (
            flags & TCP_FIN and seg.payload_len
            and (seg.tcp.seq + seg.payload_len) & MASK32 == sh.rcv_nxt
        ):
            sh.rcv_nxt = (sh.rcv_nxt + 1) & MASK32
            self.peer_fin = True
            if tcb.state is TcpState.ESTABLISHED:
                tcb.state = TcpState.CLOSE_WAIT
            yield from self._send_ack(proc)
            # answer with our own FIN immediately (simplified close)
            if tcb.state is TcpState.CLOSE_WAIT:
                fin_seq = tcb.snd_nxt
                yield from self._send_flags(
                    proc, TCP_FIN | TCP_ACK, seq=fin_seq, ack=sh.rcv_nxt
                )
                tcb.snd_nxt = (tcb.snd_nxt + 1) & MASK32
                sh.ack_seq = tcb.snd_nxt
                tcb.state = TcpState.LAST_ACK

    def _accept_data(self, proc: "Process", seg: ParsedSegment) -> Generator:
        """Place in-order payload into the receive ring and ack it."""
        tcb = self.tcb
        sh = tcb.shared
        mem = self.kernel.node.memory
        seq = seg.tcp.seq
        payload = seg.payload
        src_addr = seg.payload_addr

        if seq != sh.rcv_nxt:
            # old duplicate or out-of-order: trim or drop, duplicate-ack
            offset = (sh.rcv_nxt - seq) & MASK32
            if 0 < offset < seg.payload_len:
                payload = payload[offset:]
                src_addr += offset
                seq = sh.rcv_nxt
            else:
                tcb.dup_acks += 1
                yield from self._send_ack(proc)
                return
        if sh.free_space < len(payload):
            # no room: drop; the sender's timer will retry
            yield from self._send_ack(proc)
            return

        pos = sh.write_count & sh.buf_mask
        first = min(len(payload), sh.buf_size - pos)
        mem.write(sh.buf_base + pos, payload[:first])
        if len(payload) > first:
            mem.write(sh.buf_base, payload[first:])
        # The buffering copy out of the network buffer is unavoidable in
        # the library path ("the data that is piggybacked on the
        # acknowledgment has to be buffered until the client calls read,
        # which leads to an additional copy in our current
        # implementation").  The ASH fast path fuses it with the
        # checksum; here it is a separate traversal.
        cycles = self.stack.datapath.copy(src_addr, sh.buf_base + pos, first)
        if len(payload) > first:
            cycles += self.stack.datapath.copy(
                src_addr + first, sh.buf_base, len(payload) - first
            )
        yield from proc.compute(cycles)
        sh.write_count = (sh.write_count + len(payload)) & MASK32
        sh.rcv_nxt = (seq + len(payload)) & MASK32
        yield from self._send_ack(proc)

    # ------------------------------------------------------------------
    # transmit helpers
    # ------------------------------------------------------------------
    def _frame_and_send(self, proc: "Process", packet: bytes) -> Generator:
        frame = self.stack.frame_for(self.tcb.remote_ip, packet, self._dst_mac)
        if self.tel.enabled:
            self.tel.counter("tcp.tx_segments", conn=self.name).inc()
            self._flow.tx_segment(len(packet))
            self.kernel.node.trace(
                "tcp.tx_segment", lambda: {"conn": self.name, "len": len(packet)}
            )
        yield from self.kernel.sys_net_send(proc, self.stack.nic, frame)
        self._last_send_ticks = proc.engine.now

    def _send_data(self, proc: "Process", payload: bytes, push: bool,
                   seq: Optional[int] = None, rexmit: bool = False) -> Generator:
        tcb = self.tcb
        sh = tcb.shared
        cal = self.cal
        mem = self.kernel.node.memory
        yield from proc.compute_us(cal.tcp_send_build_us + cal.ip_process_us)
        if seq is None:
            seq = tcb.snd_nxt
        # stage the payload where checksumming/retransmission can see it;
        # this is the write-interface copy from application structures
        # into the socket buffer (paid in every Table II configuration)
        stage = self._staging.base + (seq % (self._staging.size - tcb.mss))
        yield from proc.compute(
            self.stack.datapath.copy_in(stage, payload)
        )
        if self.checksum:
            _, cycles = self.stack.datapath.checksum(stage, len(payload))
            yield from proc.compute(cycles)
            yield from proc.compute_us(cal.cksum_fixed_us)
        header = TcpHeader(
            src_port=tcb.local_port, dst_port=tcb.remote_port,
            seq=seq, ack=sh.rcv_nxt,
            flags=TCP_ACK | (TCP_PSH if push else 0),
            window=tcb.rcv_wnd,
        )
        packet = build_segment(
            tcb.local_ip, tcb.remote_ip, header, payload,
            with_checksum=self.checksum,
            ident=self.stack.next_ident(), mtu=self.stack.mtu + 40,
        )
        yield from self._frame_and_send(proc, packet)
        if not rexmit:
            self._unacked.append((seq, payload))
            tcb.snd_nxt = (seq + len(payload)) & MASK32
            sh.ack_seq = tcb.snd_nxt

    def _send_flags(self, proc: "Process", flags: int, seq: int,
                    ack: int) -> Generator:
        tcb = self.tcb
        yield from proc.compute_us(
            self.cal.tcp_send_build_us + self.cal.ip_process_us
        )
        header = TcpHeader(
            src_port=tcb.local_port, dst_port=tcb.remote_port,
            seq=seq, ack=ack, flags=flags, window=tcb.rcv_wnd,
        )
        packet = build_segment(
            tcb.local_ip, tcb.remote_ip, header, b"",
            with_checksum=self.checksum, ident=self.stack.next_ident(),
            mtu=self.stack.mtu + 40,
        )
        yield from self._frame_and_send(proc, packet)

    def _send_ack(self, proc: "Process") -> Generator:
        tcb = self.tcb
        yield from proc.compute_us(self.cal.tcp_ack_build_us)
        header = TcpHeader(
            src_port=tcb.local_port, dst_port=tcb.remote_port,
            seq=tcb.snd_nxt, ack=tcb.shared.rcv_nxt,
            flags=TCP_ACK, window=tcb.rcv_wnd,
        )
        packet = build_segment(
            tcb.local_ip, tcb.remote_ip, header, b"",
            with_checksum=self.checksum, ident=self.stack.next_ident(),
            mtu=self.stack.mtu + 40,
        )
        yield from self._frame_and_send(proc, packet)
        tcb.acks_sent += 1

    def _retransmit(self, proc: "Process") -> Generator:
        """Go-back-N: resend everything unacknowledged."""
        if not self._unacked:
            return
        self.tcb.retransmits += 1
        if self.tel.enabled:
            self.tel.counter("tcp.retransmits", conn=self.name).inc()
            self._flow.retransmit(proc.engine.now)
        for seq, payload in list(self._unacked):
            yield from self._send_data(
                proc, payload, push=True, seq=seq, rexmit=True
            )

    # ------------------------------------------------------------------
    # the kernel fast path (Table VI)
    # ------------------------------------------------------------------
    def install_fastpath(self, kind: str = "ash", sandbox: bool = True) -> None:
        """Hoist the receive fast path into a handler.

        ``kind`` is ``"ash"`` (downloaded into the kernel; ``sandbox``
        selects the safe or the unsafe variant) or ``"upcall"``.
        Call after the connection is established.
        """
        from .fastpath import setup_fastpath  # local: fastpath imports tcb

        if self.tcb.state is not TcpState.ESTABLISHED:
            raise SocketError("install the fast path after establishment")
        # an ASH install refused under memory pressure degrades to the
        # upcall variant; record what actually went in
        self.handler_mode = setup_fastpath(self, kind=kind, sandbox=sandbox)

    @property
    def fastpath_hits(self) -> int:
        return self.tcb.shared.fastpath_count
