"""TCP segment build/parse helpers shared by library and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...errors import ProtocolError
from ..headers import (
    IPPROTO_TCP,
    Ipv4Header,
    TcpHeader,
)
from ..ip import build_packets

__all__ = ["ParsedSegment", "build_segment", "parse_segment"]


@dataclass
class ParsedSegment:
    """An incoming TCP segment, located within the receive buffer."""

    ip: Ipv4Header
    tcp: TcpHeader
    #: absolute address of the start of the IP packet in node memory
    ip_addr: int
    #: absolute address of the payload
    payload_addr: int
    payload_len: int
    payload: bytes


def build_segment(
    src_ip: int,
    dst_ip: int,
    header: TcpHeader,
    payload: bytes = b"",
    with_checksum: bool = True,
    ident: int = 0,
    mtu: int = 65535,
) -> bytes:
    """One full IP packet carrying the TCP segment.

    TCP never fragments in this library — the MSS is always chosen
    below the MTU — so exceeding it is a programming error.
    """
    if with_checksum:
        tcp_bytes = header.with_checksum(src_ip, dst_ip, payload)
    else:
        tcp_bytes = header.pack()
    packets = build_packets(
        src_ip, dst_ip, IPPROTO_TCP, tcp_bytes + payload, mtu=mtu, ident=ident
    )
    if len(packets) != 1:
        raise ProtocolError(
            f"TCP segment of {len(payload)} bytes would fragment (MTU {mtu})"
        )
    return packets[0]


def parse_segment(raw: bytes, ip_addr: int) -> ParsedSegment:
    """Parse an IP packet containing a TCP segment."""
    ip = Ipv4Header.unpack(raw)
    if ip.proto != IPPROTO_TCP:
        raise ProtocolError(f"not TCP (proto {ip.proto})")
    tcp_off = Ipv4Header.SIZE
    tcp = TcpHeader.unpack(raw[tcp_off:])
    payload_off = tcp_off + tcp.header_len
    payload_len = ip.total_length - payload_off
    if payload_len < 0:
        raise ProtocolError("IP total_length shorter than headers")
    if ip.total_length > len(raw):
        # a truncated DMA (or mangled length field) must not silently
        # yield a short payload slice — reject it like any malformed frame
        raise ProtocolError(
            f"IP total_length {ip.total_length} exceeds the "
            f"{len(raw)}-byte frame (truncated)"
        )
    payload = raw[payload_off:payload_off + payload_len]
    return ParsedSegment(
        ip=ip,
        tcp=tcp,
        ip_addr=ip_addr,
        payload_addr=ip_addr + payload_off,
        payload_len=payload_len,
        payload=payload,
    )
