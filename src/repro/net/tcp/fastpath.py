"""The TCP receive fast path as a downloadable handler.

Section V-B: "Our TCP implementation lowers the cost of data transfer
by placing the common-case fast path in a handler which can be run
either as an ASH or an upcall.  This handler employs dynamic ILP to
combine the checksum and copy of message data.  A handler can run when
the following constraints are satisfied: the packet is 'expected' (the
packet we receive is the one we have predicted), the user-level TCP
library is not currently using that Transmission Control Block ...,
and the TCP library is not behind in processing, so that messages stay
in order.  If these constraints are violated, the handler aborts and
the message is handled by the user-level library."

The handler is a real VCODE program following the paper's three-part
structure:

1. **inspect** — library-busy flag, port match, header prediction
   (flags == ACK or ACK|PSH, seq == RCV_NXT), buffer space and wrap
   checks; any failure is a voluntary abort back to the library;
2. **data manipulation** — one ``ash_dilp`` call copies the payload
   into the application's receive ring while accumulating the Internet
   checksum (dynamic ILP); the TCP header and pseudo-header are folded
   in and the segment is verified;
3. **commit** — RCV_NXT / WRITE_COUNT / SND_UNA are updated in the
   shared TCB, an ACK is built in the preformatted template (checksum
   computed in-kernel through the same pipe state) and sent with
   ``ash_send``, and the application is woken with ``ash_notify``.

The same program runs as an upcall (Table VI's third column): only the
cost environment changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...ash.handler import AshBuilder
from ...errors import AllocationError, SocketError
from ...kernel.upcall import UpcallHandler
from ...pipes import PIPE_READ, PIPE_WRITE, compile_pl, mk_cksum_pipe, pipel
from ...vcode.isa import Program
from ...vcode.registers import P_VAR
from ..checksum import le_word_sum
from ..headers import IPPROTO_TCP, Ipv4Header, TCP_ACK, TcpHeader, pseudo_header
from . import tcb as T

if TYPE_CHECKING:  # pragma: no cover
    from .tcp import TcpConnection

__all__ = ["build_tcp_fastpath", "setup_fastpath"]

# message offsets (AN2 framing: the IP packet is the frame payload)
_TCP_OFF = Ipv4Header.SIZE          # 20
_PORTS_OFF = _TCP_OFF + 0           # src+dst ports as one word
_SEQ_OFF = _TCP_OFF + 4
_ACK_OFF = _TCP_OFF + 8
_DOFF_OFF = _TCP_OFF + 12           # data-offset byte (doff<<4)
_FLAGS_OFF = _TCP_OFF + 13
_CKSUM_OFF = _TCP_OFF + 16
_HDRS_LEN = _TCP_OFF + TcpHeader.SIZE  # 40


def _emit_fold2(b: AshBuilder, acc: int, tmp: int) -> None:
    """Fold a 32-bit one's-complement accumulator to 16 bits (twice)."""
    for _ in range(2):
        b.v_srl(tmp, acc, 16)
        b.v_andi(acc, acc, 0xFFFF)
        b.v_addu(acc, acc, tmp)


def build_tcp_fastpath(
    ilp_copy: int,
    ilp_read: int,
    cksum_pipe: int,
    checksum: bool = True,
) -> Program:
    """Emit the fast-path handler program.

    ``ilp_copy`` is the compiled copy(+checksum) pipeline, ``ilp_read``
    the read-only pipeline over the same pipe list (used to fold TCP
    headers into the same accumulator), ``cksum_pipe`` the checksum
    pipe's id within that list.  With ``checksum=False`` the data move
    is a pure DILP copy and no verification is emitted.
    """
    b = AshBuilder("tcp_fastpath" + ("" if checksum else "_nocksum"))
    PASS = b.label("pass")
    NOTIFY = b.label("notify")
    FLAGS_OK = b.label("flags_ok")

    # saved entry state (persistent class: survives trusted calls and,
    # incidentally, invocations — always rewritten at entry)
    msg = b.getreg(P_VAR)
    mlen = b.getreg(P_VAR)
    ctx = b.getreg(P_VAR)
    dlen = b.getreg(P_VAR)
    dst = b.getreg(P_VAR)
    b.v_move(msg, b.MSG)
    b.v_move(mlen, b.LEN)
    b.v_move(ctx, b.CTX)

    ta = b.getreg()
    tb = b.getreg()
    tc = b.getreg()

    # ---- part 1: can the fast path run? --------------------------------
    b.v_ld32(ta, ctx, T.LIB_BUSY)
    b.v_bne(ta, b.ZERO, PASS)              # library owns the TCB
    b.v_ld32(ta, msg, _PORTS_OFF)
    b.v_ld32(tb, ctx, T.PORTS_RAW)
    b.v_bne(ta, tb, PASS)                  # not this connection
    # the handler's fixed header arithmetic assumes a 20-byte TCP
    # header; a SACK-bearing segment (doff > 5) would be misparsed as
    # payload, so any option run aborts to the library
    b.v_ld8(ta, msg, _DOFF_OFF)
    b.v_li(tb, 0x50)
    b.v_bne(ta, tb, PASS)                  # options present: library's job
    # while the library holds out-of-order data, committing an in-order
    # segment here would advance RCV_NXT past ranges the handler cannot
    # see (and the sender, having seen them SACKed, will never resend)
    b.v_ld32(ta, ctx, T.OOO_PENDING)
    b.v_bne(ta, b.ZERO, PASS)              # reassembly queue non-empty
    b.v_ld8(ta, msg, _FLAGS_OFF)
    b.v_li(tb, TCP_ACK)
    b.v_beq(ta, tb, FLAGS_OK)
    b.v_li(tb, TCP_ACK | 0x08)             # ACK|PSH
    b.v_bne(ta, tb, PASS)
    b.mark(FLAGS_OK)
    b.v_ld32(ta, msg, _SEQ_OFF)
    b.v_bswap32(ta, ta)
    b.v_ld32(tb, ctx, T.RCV_NXT)
    b.v_bne(ta, tb, PASS)                  # header prediction miss

    # the ack field settles our outstanding sends (in-order delivery)
    b.v_ld32(ta, msg, _ACK_OFF)
    b.v_bswap32(ta, ta)
    b.v_st32(ta, ctx, T.SND_UNA)

    b.v_li(ta, _HDRS_LEN)
    b.v_subu(dlen, mlen, ta)               # payload length
    b.v_beq(dlen, b.ZERO, NOTIFY)          # pure ack: nothing to place

    b.v_andi(ta, dlen, 3)
    b.v_bne(ta, b.ZERO, PASS)              # DILP wants word multiples
    # space: write_count - read_count + dlen <= buf_size
    b.v_ld32(ta, ctx, T.WRITE_COUNT)
    b.v_ld32(tb, ctx, T.READ_COUNT)
    b.v_subu(ta, ta, tb)
    b.v_addu(ta, ta, dlen)
    b.v_ld32(tb, ctx, T.BUF_SIZE)
    b.v_bltu(tb, ta, PASS)                 # would overflow: library's job
    # wrap: pos + dlen must stay inside the ring
    b.v_ld32(ta, ctx, T.WRITE_COUNT)
    b.v_ld32(tb, ctx, T.BUF_MASK)
    b.v_and(ta, ta, tb)                    # pos
    b.v_addu(tb, ta, dlen)
    b.v_ld32(tc, ctx, T.BUF_SIZE)
    b.v_bltu(tc, tb, PASS)                 # wraps: library's job
    b.v_ld32(tb, ctx, T.BUF_BASE)
    b.v_addu(dst, tb, ta)                  # destination in the ring

    # ---- part 2: integrated copy + checksum ------------------------------
    if checksum:
        b.v_li(b.A0, ilp_read)
        b.v_li(b.A1, cksum_pipe)
        b.v_li(b.A2, 0)
        b.v_call("ash_ilp_set")            # zero the accumulator
    b.v_addiu(ta, msg, _HDRS_LEN)          # payload source
    b.v_dilp(ilp_copy, ta, dst, dlen)      # copy (+cksum) in one pass
    if checksum:
        b.v_addiu(ta, msg, _TCP_OFF)       # fold the TCP header in
        b.v_li(b.A0, ilp_read)
        b.v_move(b.A1, ta)
        b.v_li(b.A2, 0)
        b.v_li(b.A3, TcpHeader.SIZE)
        b.v_call("ash_dilp")
        b.v_li(b.A0, ilp_read)
        b.v_li(b.A1, cksum_pipe)
        b.v_call("ash_ilp_get")
        b.v_move(ta, b.V0)
        b.v_ld32(tb, ctx, T.PSEUDO_IN_CONST)
        b.v_cksum32(ta, tb)                # + pseudo-header constant
        b.v_addiu(tb, dlen, TcpHeader.SIZE)
        b.v_bswap16(tb, tb)
        b.v_sll(tb, tb, 16)
        b.v_cksum32(ta, tb)                # + tcp_length (LE word domain)
        _emit_fold2(b, ta, tb)
        b.v_li(tb, 0xFFFF)
        b.v_bne(ta, tb, PASS)              # checksum failed: not ours to fix

    # ---- part 3: commit -------------------------------------------------
    b.v_ld32(ta, ctx, T.RCV_NXT)
    b.v_addu(ta, ta, dlen)
    b.v_st32(ta, ctx, T.RCV_NXT)
    b.v_ld32(tb, ctx, T.WRITE_COUNT)
    b.v_addu(tb, tb, dlen)
    b.v_st32(tb, ctx, T.WRITE_COUNT)
    b.v_ld32(tb, ctx, T.FASTPATH_COUNT)
    b.v_addiu(tb, tb, 1)
    b.v_st32(tb, ctx, T.FASTPATH_COUNT)

    # build the ACK in the preformatted template
    b.v_ld32(tc, ctx, T.ACK_TMPL_ADDR)
    b.v_ld32(tb, ctx, T.ACK_SEQ)
    b.v_bswap32(tb, tb)
    b.v_st32(tb, tc, _SEQ_OFF)             # seq = our snd_nxt
    b.v_bswap32(ta, ta)                    # ta held the new rcv_nxt
    b.v_st32(ta, tc, _ACK_OFF)             # ack = new rcv_nxt
    b.v_st16(b.ZERO, tc, _CKSUM_OFF)
    if checksum:
        b.v_li(b.A0, ilp_read)
        b.v_li(b.A1, cksum_pipe)
        b.v_li(b.A2, 0)
        b.v_call("ash_ilp_set")
        b.v_addiu(ta, tc, _TCP_OFF)
        b.v_li(b.A0, ilp_read)
        b.v_move(b.A1, ta)
        b.v_li(b.A2, 0)
        b.v_li(b.A3, TcpHeader.SIZE)
        b.v_call("ash_dilp")
        b.v_li(b.A0, ilp_read)
        b.v_li(b.A1, cksum_pipe)
        b.v_call("ash_ilp_get")
        b.v_move(ta, b.V0)
        b.v_ld32(tb, ctx, T.PSEUDO_ACK_CONST)
        b.v_cksum32(ta, tb)
        _emit_fold2(b, ta, tb)
        b.v_nor(ta, ta, b.ZERO)            # one's complement
        b.v_andi(ta, ta, 0xFFFF)
        b.v_st16(ta, tc, _CKSUM_OFF)
    # send the ack straight from the kernel
    b.v_ld32(tb, ctx, T.REPLY_VCI)
    b.v_move(b.A0, tc)
    b.v_li(b.A1, _HDRS_LEN)
    b.v_move(b.A2, tb)
    b.v_call("ash_send")

    b.mark(NOTIFY)
    b.v_call("ash_notify")                 # wake the application
    b.v_consume()

    b.mark(PASS)
    b.v_pass()
    return b.finish()


def setup_fastpath(conn: "TcpConnection", kind: str = "ash",
                   sandbox: bool = True) -> str:
    """Wire the fast path onto an established connection.

    Returns the kind actually installed: an ASH download refused under
    injected memory pressure degrades to the upcall variant of the same
    handler (next level of the delivery hierarchy) instead of failing
    the connection.
    """
    if not conn.stack.is_an2:
        raise SocketError(
            "the TCP fast-path handler currently targets the AN2 "
            "framing (the Ethernet variant needs the striped DILP "
            "back end and eth header offsets)"
        )
    tcb = conn.tcb
    sh = tcb.shared
    kernel = conn.kernel
    mem = kernel.node.memory

    # pipelines: one pipe list, two compiled engines over it
    pl = pipel(name=f"{conn.name}.fp")
    cksum_pipe = mk_cksum_pipe(pl) if conn.checksum else 0
    copy_engine = compile_pl(pl, PIPE_WRITE, cal=conn.cal)
    read_engine = compile_pl(pl, PIPE_READ, cal=conn.cal)
    ilp_copy = kernel.ash_system.register_ilp(copy_engine)
    ilp_read = kernel.ash_system.register_ilp(read_engine)

    # preformat the ACK template: [IP 20][TCP 20]
    ip = Ipv4Header(
        src=tcb.local_ip, dst=tcb.remote_ip, proto=IPPROTO_TCP,
        total_length=_HDRS_LEN, ident=0,
    )
    tcp = TcpHeader(
        src_port=tcb.local_port, dst_port=tcb.remote_port,
        seq=0, ack=0, flags=TCP_ACK, window=tcb.rcv_wnd,
    )
    mem.write(conn._tmpl_region.base, ip.pack() + tcp.pack())

    sh.ack_tmpl_addr = conn._tmpl_region.base
    sh.reply_vci = conn.stack.tx_vci(tcb.remote_ip)
    sh.ack_seq = tcb.snd_nxt
    # expected first word of the TCP header, as the handler loads it
    ports = (tcb.remote_port.to_bytes(2, "big")
             + tcb.local_port.to_bytes(2, "big"))
    sh.ports_raw = int.from_bytes(ports, "little")
    sh.pseudo_in_const = le_word_sum(
        pseudo_header(tcb.remote_ip, tcb.local_ip, IPPROTO_TCP, 0)
    )
    sh.pseudo_ack_const = le_word_sum(
        pseudo_header(tcb.local_ip, tcb.remote_ip, IPPROTO_TCP,
                      TcpHeader.SIZE)
    )

    program = build_tcp_fastpath(ilp_copy, ilp_read, cksum_pipe,
                                 checksum=conn.checksum)
    allowed = [
        (conn._ring_region.base, conn._ring_region.size),
        (sh.base, T.SHARED_TCB_SIZE),
        (conn._tmpl_region.base, conn._tmpl_region.size),
    ]
    if kind == "ash":
        try:
            ash_id = kernel.ash_system.download(
                program, allowed, user_word=sh.base, sandbox=sandbox
            )
        except AllocationError:
            kind = "upcall"  # degrade: same handler, upcall environment
        else:
            kernel.ash_system.bind(conn.endpoint, ash_id)
            conn.fastpath_ash_id = ash_id
    if kind == "upcall":
        conn.endpoint.upcall = UpcallHandler(
            program=program, user_word=sh.base, name=f"{conn.name}.upcall"
        )
    elif kind != "ash":
        raise SocketError(f"unknown fast-path kind {kind!r}")
    return kind
