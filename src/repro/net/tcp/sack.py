"""SACK machinery: the sender scoreboard and the receiver reassembly queue.

Two pure data structures, deliberately free of simulator / kernel
dependencies so their behaviour is a function of the byte streams alone
(the substrate- and SMP-identity proofs lean on that):

* :class:`SackScoreboard` — the sender's per-segment retransmission
  ledger.  Every transmitted segment is a :class:`SentSeg`; cumulative
  ACKs retire a prefix, SACK blocks mark segments received
  out-of-order.  Retransmission (fast or timeout-driven) walks the
  *unsacked* segments only — selective repeat, where the pre-SACK code
  resent everything outstanding (go-back-N).
* :class:`ReassemblyQueue` — the receiver's out-of-order buffer.
  Segments ahead of ``rcv_nxt`` are held (never dropped: a block, once
  advertised, stays deliverable — no reneging) and coalesced into the
  SACK blocks advertised back to the sender, most recently changed
  range first per RFC 2018.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .tcb import MASK32, seq_lt, seq_lte

__all__ = ["SentSeg", "SackScoreboard", "ReassemblyQueue"]


@dataclass
class SentSeg:
    """One transmitted segment awaiting cumulative acknowledgment."""

    seq: int
    payload: bytes
    #: virtual send time of the *original* transmission (Karn: a
    #: retransmitted segment never yields an RTT sample)
    sent_at: int = 0
    sacked: bool = False
    rexmits: int = 0

    @property
    def end(self) -> int:
        return (self.seq + len(self.payload)) & MASK32


class SackScoreboard:
    """Sender-side per-segment SACK ledger (RFC 2018 semantics)."""

    def __init__(self) -> None:
        self.segs: list[SentSeg] = []
        #: bytes currently marked SACKed (all below snd_nxt by
        #: construction) — credited against the flight size so new data
        #: keeps flowing during recovery
        self.sacked_bytes = 0

    def __len__(self) -> int:
        return len(self.segs)

    def __bool__(self) -> bool:
        return bool(self.segs)

    def record(self, seq: int, payload: bytes, now: int) -> SentSeg:
        """Register a newly sent segment (in send order)."""
        seg = SentSeg(seq=seq, payload=payload, sent_at=now)
        self.segs.append(seg)
        return seg

    def ack(self, ack: int) -> tuple[int, Optional[SentSeg]]:
        """Retire every segment fully covered by cumulative ``ack``.

        Returns ``(bytes_newly_acked, newest_clean_seg)`` where the
        segment is the most recently sent retired one that was never
        retransmitted and not SACK-retired — the valid RTT sample.
        """
        newly_acked = 0
        sample: Optional[SentSeg] = None
        keep = []
        for seg in self.segs:
            if seq_lte(seg.end, ack):
                if seg.sacked:
                    self.sacked_bytes -= len(seg.payload)
                else:
                    newly_acked += len(seg.payload)
                if seg.rexmits == 0 and not seg.sacked:
                    sample = seg
            else:
                keep.append(seg)
        self.segs = keep
        return newly_acked, sample

    def apply_sack(self, blocks: list[tuple[int, int]]) -> int:
        """Mark segments covered by the peer's SACK blocks.

        A segment is SACKed only when a block covers it entirely (we
        never send overlapping segments, so partial cover only happens
        on malformed blocks — ignored).  Returns bytes newly marked.
        """
        newly = 0
        for left, right in blocks:
            if not seq_lt(left, right):
                continue  # empty or inverted block: ignore
            for seg in self.segs:
                if seg.sacked:
                    continue
                if seq_lte(left, seg.seq) and seq_lte(seg.end, right):
                    seg.sacked = True
                    newly += len(seg.payload)
        self.sacked_bytes += newly
        return newly

    def first_unsacked(self) -> Optional[SentSeg]:
        for seg in self.segs:
            if not seg.sacked:
                return seg
        return None

    def unsacked(self) -> Iterator[SentSeg]:
        """Unsacked segments in sequence order (the retransmit set)."""
        for seg in self.segs:
            if not seg.sacked:
                yield seg

    def holes_below_sacked(self) -> Iterator[SentSeg]:
        """Unsacked segments with a SACKed segment above them — the
        holes the receiver has proven are missing (lost, not merely
        late), in sequence order."""
        highest_sacked = None
        for seg in self.segs:
            if seg.sacked:
                highest_sacked = seg.seq
        if highest_sacked is None:
            return
        for seg in self.segs:
            if not seg.sacked and seq_lt(seg.seq, highest_sacked):
                yield seg


@dataclass
class _Range:
    """One contiguous received-but-undeliverable byte range."""

    start: int
    data: bytearray

    @property
    def end(self) -> int:
        return (self.start + len(self.data)) & MASK32


class ReassemblyQueue:
    """Receiver-side out-of-order buffer + SACK block generator."""

    def __init__(self, limit: int = 65536) -> None:
        self.ranges: list[_Range] = []    # sorted by start
        self.limit = limit
        #: starts of the ranges most recently grown, newest first —
        #: RFC 2018 block ordering ("the first SACK block MUST specify
        #: the contiguous block containing the most recently received
        #: segment")
        self._recency: list[int] = []

    def __bool__(self) -> bool:
        return bool(self.ranges)

    @property
    def buffered(self) -> int:
        return sum(len(r.data) for r in self.ranges)

    def add(self, seq: int, payload: bytes, rcv_nxt: int) -> bool:
        """Buffer an out-of-order segment.  Returns True if any byte of
        it was new (False for pure duplicates or over-limit drops).

        Only data within ``limit`` bytes of ``rcv_nxt`` is held, so a
        mis-behaving sender cannot balloon the queue; a refused segment
        was never advertised, so refusing it is not reneging.
        """
        if not payload:
            return False
        offset = (seq - rcv_nxt) & MASK32
        if offset > 0x7FFFFFFF or offset + len(payload) > self.limit:
            return False
        # trim overlap with every existing range, then insert what's new
        new_start, new_data = seq, bytearray(payload)
        for r in self.ranges:
            lap_lo = (r.start - new_start) & MASK32
            if lap_lo <= 0x7FFFFFFF and lap_lo < len(new_data):
                # r starts inside the new data: split around r
                head = new_data[:lap_lo]
                tail_off = lap_lo + len(r.data)
                tail = new_data[tail_off:] if tail_off < len(new_data) else b""
                if head:
                    self._insert(new_start, head)
                if not tail:
                    return bool(head)
                new_start = r.end
                new_data = bytearray(tail)
                continue
            lap_hi = (new_start - r.start) & MASK32
            if lap_hi <= 0x7FFFFFFF and lap_hi < len(r.data):
                # new data starts inside r: drop the covered prefix
                covered = len(r.data) - lap_hi
                if covered >= len(new_data):
                    return False
                new_start = (new_start + covered) & MASK32
                new_data = new_data[covered:]
        self._insert(new_start, new_data)
        return True

    def _insert(self, start: int, data: bytearray) -> None:
        """Insert a non-overlapping range and coalesce its neighbours."""
        merged = _Range(start, bytearray(data))
        out: list[_Range] = []
        for r in self.ranges:
            if r.end == merged.start:
                merged = _Range(r.start, r.data + merged.data)
                self._forget(r.start)
            elif merged.end == r.start:
                merged = _Range(merged.start, merged.data + r.data)
                self._forget(r.start)
            else:
                out.append(r)
        out.append(merged)
        out.sort(key=lambda r: (r.start - merged.start) & MASK32)
        # keep absolute order by start relative to the smallest element
        base = min(out, key=lambda r: r.start).start
        out.sort(key=lambda r: (r.start - base) & MASK32)
        self.ranges = out
        self._forget(merged.start)
        self._recency.insert(0, merged.start)

    def _forget(self, start: int) -> None:
        if start in self._recency:
            self._recency.remove(start)

    def blocks(self) -> list[tuple[int, int]]:
        """SACK blocks, most recently changed range first."""
        by_start = {r.start: r for r in self.ranges}
        ordered = [by_start[s] for s in self._recency if s in by_start]
        return [(r.start, r.end) for r in ordered]

    def pop_ready(self, rcv_nxt: int) -> bytes:
        """Remove and return bytes contiguous with ``rcv_nxt``."""
        for i, r in enumerate(self.ranges):
            if r.start == rcv_nxt:
                self.ranges.pop(i)
                self._forget(r.start)
                return bytes(r.data)
        return b""
