"""User-level TCP (RFC 793 subset) with a downloadable fast path."""

from .fastpath import build_tcp_fastpath, setup_fastpath
from .segment import ParsedSegment, build_segment, parse_segment
from .tcb import SharedTcb, Tcb, TcpState, seq_lt, seq_lte
from .tcp import TcpConnection

__all__ = [
    "TcpConnection",
    "TcpState",
    "Tcb",
    "SharedTcb",
    "seq_lt",
    "seq_lte",
    "ParsedSegment",
    "build_segment",
    "parse_segment",
    "build_tcp_fastpath",
    "setup_fastpath",
]
