"""Dynamic protocol composition (the Section II-C extension).

"Whereas dynamic ILP provides modularity in terms of pipes ... dynamic
protocol composition provides modularity in terms of entire protocols
(only one IP routine has to be written, and can be composed with UDP or
TCP)."  The paper defers details to [21]; this module implements the
idea at the header-processing level: a protocol is a *fragment* that
knows how to encapsulate and decapsulate one layer, and a
:class:`ProtocolStack` composes any sequence of fragments at runtime.

Fragments also report their per-layer processing cost, so a composed
stack charges exactly what its layers cost — a stack assembled at
runtime from `[ethernet, ipv4, udp]` behaves identically to the
hand-wired fast paths in :mod:`repro.net.udp`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import ProtocolError
from .headers import (
    ETHERTYPE_IP,
    EthernetHeader,
    IPPROTO_TCP,
    IPPROTO_UDP,
    Ipv4Header,
    UdpHeader,
)

__all__ = [
    "LayerContext",
    "ProtocolFragment",
    "ProtocolStack",
    "ethernet_fragment",
    "ipv4_fragment",
    "udp_fragment",
]


@dataclass
class LayerContext:
    """Mutable bag of per-packet facts, shared across the layers.

    Encapsulation reads fields (addresses, ports); decapsulation fills
    them in (who sent this, which port).
    """

    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        try:
            return self.fields[key]
        except KeyError:
            raise ProtocolError(f"composition needs field {key!r}") from None

    def __setitem__(self, key: str, value: Any) -> None:
        self.fields[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


@dataclass(frozen=True)
class ProtocolFragment:
    """One composable layer."""

    name: str
    #: encap(ctx, payload) -> header bytes to prepend
    encap: Callable[[LayerContext, bytes], bytes]
    #: decap(ctx, packet) -> payload (raises ProtocolError to reject)
    decap: Callable[[LayerContext, bytes], bytes]
    #: µs of protocol processing this layer charges per packet
    cost_us: float = 2.0


class ProtocolStack:
    """A runtime-composed sequence of fragments, outermost first."""

    def __init__(self, fragments: list[ProtocolFragment]):
        if not fragments:
            raise ProtocolError("a protocol stack needs at least one layer")
        self.fragments = list(fragments)

    @property
    def name(self) -> str:
        return "/".join(f.name for f in self.fragments)

    @property
    def cost_us(self) -> float:
        return sum(f.cost_us for f in self.fragments)

    def encapsulate(self, ctx: LayerContext, payload: bytes) -> bytes:
        """Wrap payload in every layer, innermost first."""
        packet = payload
        for fragment in reversed(self.fragments):
            packet = fragment.encap(ctx, packet) + packet
        return packet

    def decapsulate(self, ctx: LayerContext, packet: bytes) -> bytes:
        """Strip every layer, outermost first."""
        payload = packet
        for fragment in self.fragments:
            payload = fragment.decap(ctx, payload)
        return payload

    def composed_with(self, fragment: ProtocolFragment,
                      inner: bool = True) -> "ProtocolStack":
        """A new stack with one more layer (runtime re-composition)."""
        if inner:
            return ProtocolStack(self.fragments + [fragment])
        return ProtocolStack([fragment] + self.fragments)


# ---------------------------------------------------------------------------
# the standard fragments
# ---------------------------------------------------------------------------

def ethernet_fragment() -> ProtocolFragment:
    def encap(ctx: LayerContext, payload: bytes) -> bytes:
        return EthernetHeader(
            dst=ctx["dst_mac"], src=ctx["src_mac"], ethertype=ETHERTYPE_IP
        ).pack()

    def decap(ctx: LayerContext, packet: bytes) -> bytes:
        header = EthernetHeader.unpack(packet)
        if header.ethertype != ETHERTYPE_IP:
            raise ProtocolError(f"not IP: ethertype {header.ethertype:#x}")
        ctx["src_mac"] = header.src
        ctx["dst_mac"] = header.dst
        return packet[EthernetHeader.SIZE:]

    return ProtocolFragment("eth", encap, decap, cost_us=1.0)


def ipv4_fragment(proto: Optional[int] = None) -> ProtocolFragment:
    """The one IP routine, parameterized only by the next protocol."""

    def encap(ctx: LayerContext, payload: bytes) -> bytes:
        return Ipv4Header(
            src=ctx["src_ip"], dst=ctx["dst_ip"],
            proto=proto if proto is not None else ctx["ip_proto"],
            total_length=Ipv4Header.SIZE + len(payload),
            ident=ctx.get("ident", 0),
        ).pack()

    def decap(ctx: LayerContext, packet: bytes) -> bytes:
        header = Ipv4Header.unpack(packet)
        if proto is not None and header.proto != proto:
            raise ProtocolError(
                f"wrong transport: {header.proto} != {proto}"
            )
        ctx["src_ip"] = header.src
        ctx["dst_ip"] = header.dst
        ctx["ip_proto"] = header.proto
        return packet[Ipv4Header.SIZE:header.total_length]

    name = {IPPROTO_UDP: "ip(udp)", IPPROTO_TCP: "ip(tcp)"}.get(
        proto, "ip"
    )
    return ProtocolFragment(name, encap, decap, cost_us=3.0)


def udp_fragment(checksum: bool = True) -> ProtocolFragment:
    def encap(ctx: LayerContext, payload: bytes) -> bytes:
        return UdpHeader.build(
            ctx["src_ip"], ctx["dst_ip"],
            ctx["src_port"], ctx["dst_port"],
            payload, with_checksum=checksum,
        )

    def decap(ctx: LayerContext, packet: bytes) -> bytes:
        header = UdpHeader.unpack(packet)
        if checksum and header.checksum:
            if not UdpHeader.verify(ctx["src_ip"], ctx["dst_ip"],
                                    packet[:header.length]):
                raise ProtocolError("UDP checksum failed")
        ctx["src_port"] = header.src_port
        ctx["dst_port"] = header.dst_port
        return packet[UdpHeader.SIZE:header.length]

    return ProtocolFragment("udp", encap, decap, cost_us=4.0)
