"""A tiny NFS-flavoured RPC file service over the user-level UDP.

The paper lists NFS among its user-level protocol libraries.  This is a
compact Sun-RPC-shaped reproduction: XDR-style packing (4-byte-aligned,
big-endian), transaction ids, and the classic stateless procedures —
LOOKUP / GETATTR / READ / WRITE / CREATE — against an in-memory file
store.  It exercises UDP with realistic request/response sizes and
gives the examples a second application protocol beside HTTP.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Generator, Optional, TYPE_CHECKING

from ..errors import ProtocolError
from .udp import UdpSocket

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.process import Process

__all__ = ["NfsServer", "NfsClient", "MemFs", "NfsError",
           "NFS_OK", "NFSERR_NOENT", "NFSERR_EXIST", "NFSERR_IO"]

# procedure numbers
PROC_LOOKUP = 1
PROC_GETATTR = 2
PROC_READ = 3
PROC_WRITE = 4
PROC_CREATE = 5

# status codes
NFS_OK = 0
NFSERR_NOENT = 2
NFSERR_IO = 5
NFSERR_EXIST = 17


class NfsError(ProtocolError):
    def __init__(self, status: int):
        super().__init__(f"NFS error {status}")
        self.status = status


def _pad(data: bytes) -> bytes:
    return data + b"\x00" * (-len(data) % 4)


def pack_opaque(data: bytes) -> bytes:
    return struct.pack("!I", len(data)) + _pad(data)


def unpack_opaque(buf: bytes, off: int) -> tuple[bytes, int]:
    (n,) = struct.unpack_from("!I", buf, off)
    off += 4
    data = buf[off:off + n]
    if len(data) != n:
        raise ProtocolError("truncated XDR opaque")
    return data, off + n + (-n % 4)


@dataclass
class MemFs:
    """The in-memory file store behind the server."""

    files: dict[int, bytearray] = field(default_factory=dict)
    names: dict[str, int] = field(default_factory=dict)
    _next_fh: int = 1

    def create(self, name: str) -> int:
        if name in self.names:
            raise NfsError(NFSERR_EXIST)
        fh = self._next_fh
        self._next_fh += 1
        self.names[name] = fh
        self.files[fh] = bytearray()
        return fh

    def lookup(self, name: str) -> int:
        if name not in self.names:
            raise NfsError(NFSERR_NOENT)
        return self.names[name]

    def read(self, fh: int, offset: int, count: int) -> bytes:
        if fh not in self.files:
            raise NfsError(NFSERR_NOENT)
        return bytes(self.files[fh][offset:offset + count])

    def write(self, fh: int, offset: int, data: bytes) -> int:
        if fh not in self.files:
            raise NfsError(NFSERR_NOENT)
        blob = self.files[fh]
        if offset > len(blob):
            blob.extend(b"\x00" * (offset - len(blob)))
        blob[offset:offset + len(data)] = data
        return len(blob)

    def size(self, fh: int) -> int:
        if fh not in self.files:
            raise NfsError(NFSERR_NOENT)
        return len(self.files[fh])


class NfsServer:
    """Serves RPC requests arriving on a UDP socket."""

    def __init__(self, sock: UdpSocket, fs: Optional[MemFs] = None):
        self.sock = sock
        self.fs = fs if fs is not None else MemFs()
        self.ops_served = 0

    def serve(self, proc: "Process", max_ops: int) -> Generator:
        for _ in range(max_ops):
            dg = yield from self.sock.recvfrom(proc)
            reply = self._handle(dg.payload)
            yield from self.sock.sendto(proc, reply, dg.src_ip, dg.src_port)
            self.ops_served += 1

    def _handle(self, request: bytes) -> bytes:
        try:
            xid, procnum = struct.unpack_from("!II", request, 0)
        except struct.error:
            return struct.pack("!III", 0, NFSERR_IO, 0)
        try:
            body = self._dispatch(procnum, request[8:])
            return struct.pack("!II", xid, NFS_OK) + body
        except NfsError as exc:
            return struct.pack("!II", xid, exc.status)
        except (ProtocolError, struct.error):
            return struct.pack("!II", xid, NFSERR_IO)

    def _dispatch(self, procnum: int, args: bytes) -> bytes:
        fs = self.fs
        if procnum == PROC_LOOKUP:
            name, _ = unpack_opaque(args, 0)
            return struct.pack("!I", fs.lookup(name.decode()))
        if procnum == PROC_CREATE:
            name, _ = unpack_opaque(args, 0)
            return struct.pack("!I", fs.create(name.decode()))
        if procnum == PROC_GETATTR:
            (fh,) = struct.unpack_from("!I", args, 0)
            return struct.pack("!I", fs.size(fh))
        if procnum == PROC_READ:
            fh, offset, count = struct.unpack_from("!III", args, 0)
            return pack_opaque(fs.read(fh, offset, count))
        if procnum == PROC_WRITE:
            fh, offset = struct.unpack_from("!II", args, 0)
            data, _ = unpack_opaque(args, 8)
            return struct.pack("!I", fs.write(fh, offset, data))
        raise NfsError(NFSERR_IO)


class NfsClient:
    """Issues RPC calls; one outstanding call at a time (like v2)."""

    def __init__(self, sock: UdpSocket, server_ip: int, server_port: int):
        self.sock = sock
        self.server_ip = server_ip
        self.server_port = server_port
        self._xid = 0

    def _call(self, proc: "Process", procnum: int, args: bytes) -> Generator:
        self._xid += 1
        xid = self._xid
        request = struct.pack("!II", xid, procnum) + args
        yield from self.sock.sendto(proc, request, self.server_ip,
                                    self.server_port)
        while True:
            dg = yield from self.sock.recvfrom(proc)
            got_xid, status = struct.unpack_from("!II", dg.payload, 0)
            if got_xid != xid:
                continue  # stale reply
            if status != NFS_OK:
                raise NfsError(status)
            return dg.payload[8:]

    def create(self, proc: "Process", name: str) -> Generator:
        body = yield from self._call(proc, PROC_CREATE,
                                     pack_opaque(name.encode()))
        return struct.unpack_from("!I", body, 0)[0]

    def lookup(self, proc: "Process", name: str) -> Generator:
        body = yield from self._call(proc, PROC_LOOKUP,
                                     pack_opaque(name.encode()))
        return struct.unpack_from("!I", body, 0)[0]

    def getattr(self, proc: "Process", fh: int) -> Generator:
        body = yield from self._call(proc, PROC_GETATTR, struct.pack("!I", fh))
        return struct.unpack_from("!I", body, 0)[0]

    def read(self, proc: "Process", fh: int, offset: int, count: int) -> Generator:
        body = yield from self._call(
            proc, PROC_READ, struct.pack("!III", fh, offset, count)
        )
        data, _ = unpack_opaque(body, 0)
        return data

    def write(self, proc: "Process", fh: int, offset: int, data: bytes) -> Generator:
        body = yield from self._call(
            proc, PROC_WRITE, struct.pack("!II", fh, offset) + pack_opaque(data)
        )
        return struct.unpack_from("!I", body, 0)[0]
