"""Cost-accounted data movement for the user-level protocol libraries.

The protocol libraries are trusted C code in the paper — they are not
interpreted — but their *data-touching* costs (copies, checksum passes)
are exactly what Tables II-IV measure.  :class:`DataPath` provides
those operations over a node's memory with the same cycle/cache model
the VCODE loops use:

* ``copy`` — the tuned (unrolled) memcpy: 11 instructions per 16 bytes,
* ``checksum`` — the straightforward per-word RFC 1071 pass protocol
  code uses: 6 cycles per word (the paper's *separate* strategy),
* ``copy_checksum_integrated`` — the DILP engine (one traversal),

Each returns the cycles consumed; the caller charges them to a process
or interrupt context.  Checksum values are returned in the little-endian
accumulation domain (see :mod:`repro.net.checksum`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hw.cache import DirectMappedCache
from ..hw.calibration import Calibration
from ..hw.node import Node
from ..pipes import PIPE_WRITE, compile_pl, mk_cksum_pipe, pipel
from .checksum import le_fold_final

__all__ = ["DataPath"]

#: instruction cycles per 16-byte main-loop iteration of the tuned copy
_COPY_MAIN = 12
#: per-word iteration of the tail loop / per-word checksum pass
_COPY_TAIL = 7
_CKSUM_WORD = 6
#: loop prologue/epilogue overhead
_LOOP_FIXED = 6


class DataPath:
    """Data-touching operations with the node's cache/cycle model."""

    def __init__(self, node: Node):
        self.node = node
        self.mem = node.memory
        self.cache: DirectMappedCache = node.dcache
        self.cal: Calibration = node.cal
        self.tel = node.telemetry
        pl = pipel(name="datapath")
        self._cksum_pipe_id = mk_cksum_pipe(pl)
        self._pl = pl
        self._integrated = compile_pl(pl, PIPE_WRITE, cal=node.cal)
        self._integrated.telemetry = node.telemetry
        # per-op instrument cache: _record sits on every copy/checksum
        # call, so the registry lookup is paid once per op, not per call
        self._instruments: dict[str, tuple] = {}

    def _record(self, op: str, nbytes: int, cycles: int) -> None:
        tel = self.tel
        if tel.enabled:
            pair = self._instruments.get(op)
            if pair is None:
                pair = (tel.counter("datapath.bytes", op=op),
                        tel.counter("datapath.cycles", op=op))
                self._instruments[op] = pair
            pair[0].inc(nbytes)
            pair[1].inc(cycles)

    # -- copies ------------------------------------------------------------
    def copy(self, src: int, dst: int, nbytes: int) -> int:
        """Tuned word copy; returns cycles (including cache stalls)."""
        if nbytes == 0:
            return 0
        whole = nbytes - nbytes % 4
        if whole:
            self.mem.copy_range(src, dst, whole)
        for i in range(whole, nbytes):  # trailing bytes
            self.mem.store_u8(dst + i, self.mem.load_u8(src + i))
        main, tail_words = divmod(whole // 4, 4)
        cycles = (
            _LOOP_FIXED
            + main * _COPY_MAIN
            + tail_words * _COPY_TAIL
            + (nbytes - whole) * 4
        )
        cycles += self.cache.touch_range(src, nbytes, is_store=False)
        self.cache.touch_range(dst, nbytes, is_store=True)
        self._record("copy", nbytes, cycles)
        return cycles

    def copy_in(self, dst: int, data: bytes) -> int:
        """Copy from application data structures into a protocol buffer
        (the write-interface staging copy).  The application source is
        assumed uncached; returns cycles."""
        self.mem.write(dst, data)
        n = len(data)
        if n == 0:
            return 0
        whole = n - n % 4
        main, tail_words = divmod(whole // 4, 4)
        line = self.cal.cache_line
        cycles = (
            _LOOP_FIXED
            + main * _COPY_MAIN
            + tail_words * _COPY_TAIL
            + (n - whole) * 4
            + self.cal.miss_penalty_cycles * ((n + line - 1) // line)
        )
        self.cache.touch_range(dst, n, is_store=True)
        self._record("copy_in", n, cycles)
        return cycles

    # -- checksums ----------------------------------------------------------
    def checksum(self, addr: int, nbytes: int, init: int = 0) -> tuple[int, int]:
        """Separate checksum pass; returns (le-domain acc32, cycles)."""
        if nbytes == 0:
            return init, _LOOP_FIXED
        whole = nbytes - nbytes % 4
        total = init
        if whole:
            words = self.mem.u32_window(addr, whole).astype(np.uint64)
            total += int(words.sum())
        if nbytes % 4:
            rest = bytes(self.mem.read(addr + whole, nbytes % 4))
            rest += b"\x00" * (4 - len(rest))
            total += int.from_bytes(rest, "little")
        while total > 0xFFFFFFFF:
            total = (total & 0xFFFFFFFF) + (total >> 32)
        words_touched = (nbytes + 3) // 4
        cycles = _LOOP_FIXED + words_touched * _CKSUM_WORD
        cycles += self.cache.touch_range(addr, nbytes, is_store=False)
        self._record("checksum", nbytes, cycles)
        return total, cycles

    def checksum_final(self, addr: int, nbytes: int, init: int = 0) -> tuple[int, int]:
        """As :meth:`checksum` but folded and complemented (wire value,
        little-endian domain)."""
        acc, cycles = self.checksum(addr, nbytes, init)
        return le_fold_final(acc), cycles + 4  # fold is a few instructions

    # -- integrated (DILP) --------------------------------------------------
    def copy_checksum_integrated(
        self, src: int, dst: int, nbytes: int, init: int = 0
    ) -> tuple[int, int]:
        """One traversal: copy + checksum via the DILP engine.

        Returns (le-domain acc32, cycles).  Requires nbytes % 4 == 0.
        """
        self._pl.export(self._cksum_pipe_id, "cksum", init)
        cycles = self._integrated.run_fast(self.mem, src, dst, nbytes, self.cache)
        return self._pl.import_(self._cksum_pipe_id, "cksum"), cycles
