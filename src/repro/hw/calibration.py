"""Cost-model calibration: every constant the simulator charges.

The paper's testbed was a pair of 40 MHz MIPS DECstation 5000/240s
(64 KB direct-mapped write-through caches, 25 MHz TURBOchannel) joined
by a 155 Mb/s AN2 ATM switch and a 10 Mb/s Ethernet.  This module is the
single place where that hardware — and the handful of Aegis software
path costs the paper reports — is turned into numbers.

Each constant cites the paper sentence it is anchored to.  Constants not
directly given by the paper are derived so that the *anchored* numbers
come out right (the derivations are in the comments).  Benchmarks that
perform ablations construct modified :class:`Calibration` instances
rather than mutating the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import CalibrationError

__all__ = ["Calibration", "DEFAULT", "PRIO_INTERRUPT", "PRIO_KERNEL", "PRIO_USER"]

# CPU lock priorities (lower = more urgent).
PRIO_INTERRUPT = 0
PRIO_KERNEL = 5
PRIO_USER = 10


@dataclass(frozen=True)
class Calibration:
    """All tunable cost constants, in cycles/µs/bytes as noted."""

    # ------------------------------------------------------------------
    # CPU ("a pair of 40-MHz DECstation 5000/240s ... 42.9 MIPS")
    # ------------------------------------------------------------------
    cpu_mhz: float = 40.0                  #: clock; 40 cycles = 1 µs
    insn_cycles: int = 1                   #: base cost of a VCODE instruction
    exec_quantum_cycles: int = 200         #: preemption granularity (5 µs)

    # ------------------------------------------------------------------
    # Memory system ("separate direct-mapped write-through 64-kbyte
    # caches for instructions and data").  Derived so that Table III's
    # anchor holds: a single uncached 4096-byte copy runs at ~20 MB/s,
    # i.e. ~2.0 cycles/byte with an unrolled 16-byte-per-iteration copy
    # loop (11 instructions / 16 B = 0.6875 c/B) plus one line miss.
    # ------------------------------------------------------------------
    cache_size: int = 64 * 1024            #: bytes
    cache_line: int = 16                   #: bytes per line
    miss_penalty_cycles: int = 21          #: stall per loaded line miss
    #: Stores go through the write buffer and install the line without a
    #: stall (write-through, fetch-on-write hidden); loads pay misses.
    store_installs_line: bool = True

    # Cost of the specialised VCODE networking primitives, per 32-bit
    # word (Section II-B: "add-with-carry" checksum; MIPS has no bswap
    # instruction so a swap is a shift/mask sequence).
    cksum32_cycles: int = 2
    bswap32_cycles: int = 9
    bswap16_cycles: int = 4
    xor32_cycles: int = 1

    # ------------------------------------------------------------------
    # AN2 ATM network (Section IV-C)
    # ------------------------------------------------------------------
    #: "the hardware overhead for a round trip is approximately 96 µs".
    an2_hw_oneway_us: float = 48.0
    #: "maximum achievable per-link bandwidth is about 16.8 Mbytes/s".
    an2_rate_bytes_per_s: float = 16.8e6
    #: Largest AN2 receive buffer / segment ("3072 bytes for AN2").
    an2_mtu: int = 3072
    #: Fig 3 reaches 16.11 MB/s at 4 KB packets; raw interface allows 4 KB.
    an2_max_packet: int = 4096
    #: "the kernel software is adding only 16 µs" per round trip — split
    #: across one send and one receive on each of two hosts.
    an2_kernel_send_us: float = 4.0
    an2_kernel_recv_us: float = 4.0        #: incl. post-DMA cache flush

    # ------------------------------------------------------------------
    # Ethernet (10 Mb/s; Table I raw round trip 309 µs)
    # ------------------------------------------------------------------
    eth_rate_bytes_per_s: float = 1.25e6
    eth_mtu: int = 1500
    #: LANCE-class adapter: fixed DMA/deference latency per frame (on
    #: the wire side) and a heavyweight driver interrupt path (striping
    #: DMA ring management).  Derived so Table I's raw Ethernet round
    #: trip lands near 309 µs: 2 x (51.2 wire + 20 dma + 48 driver +
    #: ~36.5 user turnaround) ≈ 311.
    eth_dma_latency_us: float = 20.0
    eth_driver_us: float = 38.0            #: receive interrupt path
    eth_tx_us: float = 8.0                 #: transmit descriptor setup
    eth_min_frame: int = 64

    # ------------------------------------------------------------------
    # Aegis kernel paths (Section IV-C/V; Table I user-level 182 µs =
    # 96 hw + 8 kernel pkt + ~78 of user-level path: "schedule the
    # application, cross the kernel-user boundary multiple times, and
    # use the full system call interface").
    # ------------------------------------------------------------------
    syscall_us: float = 1.5                #: one crossing, in or out
    user_send_path_us: float = 16.0        #: buffer alloc + descriptors + send syscall
    user_recv_path_us: float = 16.5        #: ring poll hit + buffer return
    poll_check_us: float = 1.0             #: one spin of a user polling loop
    #: Full context switch (address space + registers + scheduler),
    #: derived from Table V: user-level suspended (247) − polling (182)
    #: ≈ 65 µs = interrupt discovery + deschedule dummy + reschedule app.
    context_switch_us: float = 25.0
    #: Simulated-interrupt wake path (Table V "Suspended"): the dummy
    #: process discovers the message and yields; derived so that
    #: user-level suspended − polling ≈ 65 µs together with the context
    #: switch.
    interrupt_wake_us: float = 40.0
    #: Ultrix is a heavyweight kernel: fixed extra cost per interrupt
    #: dispatch leg ("under Ultrix this difference would be more like
    #: 95 µs — the approximate cost of an exception plus the system call
    #: back into the kernel").
    ultrix_fixed_us: float = 95.0
    #: Run-queue scan / priority recomputation per ready process; gives
    #: Fig 4's Ultrix curve its mild growth with process count.
    sched_scan_us: float = 4.0
    #: Round-robin quantum.  Aegis ran a simple round-robin scheduler;
    #: we use a 1024 µs time slice so Fig 4's growth is visible at a
    #: handful of processes, as in the paper's figure.
    quantum_us: float = 1024.0
    tick_us: float = 1000.0                #: clock interrupt period

    # ------------------------------------------------------------------
    # ASHs (Section V)
    # ------------------------------------------------------------------
    #: Install context identifier + page-table pointer + user stack
    #: before running the handler (Section III-A).
    ash_invoke_us: float = 2.0
    #: "Setting up and clearing these timers takes approximately one
    #: microsecond each on our system."
    ash_timer_setup_us: float = 1.0
    ash_timer_clear_us: float = 1.0
    #: Abort any ASH that attempts to use two clock ticks or more.
    ash_budget_ticks: int = 2
    #: Default instruction budget ("tens of thousands of instructions").
    ash_insn_budget: int = 65536
    #: Per-load/store sandbox check (software, MIPS).  The paper's
    #: sandboxed remote increment added 76 instructions and ~5 µs
    #: (200 cycles), i.e. ~2.6 cycles per added instruction.
    sandbox_check_cycles: int = 3
    #: Per-indirect-jump runtime check.
    sandbox_jump_check_cycles: int = 3
    #: Aggregated access check performed by trusted msg-access calls
    #: ("these checks add little to the base cost").
    trusted_call_check_cycles: int = 12
    #: Posting a lightweight "data ready" notification from a handler
    #: to the owning process's ring.
    ash_notify_us: float = 1.5
    #: Receive-livelock protection (Section VI-4): "the operating
    #: system must track the number of ASHs recently executed for each
    #: process and refuse to execute any more for processes receiving
    #: more than their share" — at most this many invocations per
    #: endpoint per clock tick; excess messages take the normal (lazy)
    #: path.  Far above any benchmark's rate; 0 disables the guard.
    ash_livelock_limit: int = 500

    # ------------------------------------------------------------------
    # Upcalls (Section V; Table V upcall 191 µs vs ASH 147/152)
    # "the advantage of running an ASH ... versus an upcall in user
    # space is approximately 35 µs".
    # ------------------------------------------------------------------
    upcall_dispatch_us: float = 14.0       #: kernel → user handler entry
    upcall_return_us: float = 5.0          #: handler exit → kernel
    upcall_batch_check_us: float = 4.0     #: batching machinery per message

    # ------------------------------------------------------------------
    # User-level protocol library paths (Section IV-D).  UDP adds ~43 µs
    # over raw on AN2 ("the UDP library allocates send buffers, and
    # initializes IP and UDP fields"); TCP adds ~140 µs over UDP
    # (synchronous write, ack buffering copy, header prediction).
    # ------------------------------------------------------------------
    #: Fixed (size-independent) cost of taking the checksum code path:
    #: pseudo-header construction, fold, compare/store.  Derived from
    #: Table II: UDP latency rises 225 -> 244 µs with checksumming of a
    #: 4-byte payload — ~19 µs over four checksum operations per round
    #: trip.
    cksum_fixed_us: float = 4.5
    udp_send_build_us: float = 10.0        #: alloc + IP/UDP field init
    udp_recv_parse_us: float = 7.0         #: header parse + port check
    ip_process_us: float = 3.0             #: ident, ttl, route on send
    tcp_send_build_us: float = 16.0        #: segment build + TCB update
    tcp_recv_hdrpred_us: float = 12.0      #: header-prediction fast path
    tcp_recv_slow_us: float = 35.0         #: full receive processing
    tcp_ack_build_us: float = 10.0         #: pure-ack construction
    tcp_sync_write_us: float = 14.0        #: synchronous write return path
    tcp_read_wakeup_us: float = 10.0       #: read() buffering hand-off
    dpf_compiled_demux_us: float = 1.0     #: DPF: compiled filter match
    dpf_interpreted_demux_us: float = 11.0 #: order-of-magnitude slower

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.cpu_mhz <= 0:
            raise CalibrationError("cpu_mhz must be positive")
        if self.cache_line <= 0 or self.cache_size % self.cache_line:
            raise CalibrationError("cache_size must be a multiple of cache_line")
        for name in ("an2_rate_bytes_per_s", "eth_rate_bytes_per_s"):
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive")
        if self.ash_budget_ticks < 1:
            raise CalibrationError("ash_budget_ticks must be >= 1")

    # -- helpers ---------------------------------------------------------
    @property
    def cycles_per_us(self) -> float:
        return self.cpu_mhz

    def cycles_to_us(self, cyc: float) -> float:
        return cyc / self.cpu_mhz

    def us_to_cycles(self, usec: float) -> int:
        return round(usec * self.cpu_mhz)

    def with_changes(self, **kwargs: Any) -> "Calibration":
        """A copy with selected constants replaced (for ablations)."""
        return replace(self, **kwargs)


#: The calibration every benchmark uses unless it is doing an ablation.
DEFAULT = Calibration()
