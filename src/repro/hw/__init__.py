"""Hardware models: CPU, caches, memory, wires and NICs."""

from .cache import DirectMappedCache
from .calibration import Calibration, DEFAULT, PRIO_INTERRUPT, PRIO_KERNEL, PRIO_USER
from .cpu import Cpu
from .link import Frame, Link
from .memory import PhysicalMemory, Region
from .node import Node
from .nic import An2Nic, EthernetNic, Nic, RxDescriptor

__all__ = [
    "Calibration",
    "DEFAULT",
    "PRIO_INTERRUPT",
    "PRIO_KERNEL",
    "PRIO_USER",
    "Cpu",
    "DirectMappedCache",
    "Frame",
    "Link",
    "PhysicalMemory",
    "Region",
    "Node",
    "Nic",
    "RxDescriptor",
    "An2Nic",
    "EthernetNic",
]
