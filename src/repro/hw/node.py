"""A node: CPUs + caches + memory + NICs, the unit a kernel runs on."""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..sim.engine import Engine
from ..sim.trace import Tracer
from ..telemetry import Telemetry
from .cache import DirectMappedCache
from .calibration import Calibration, DEFAULT
from .cpu import Cpu
from .memory import PhysicalMemory
from .nic.base import Nic, PacketBufPool

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel

__all__ = ["Node"]

#: frames drained per NIC→kernel handoff on multicore nodes (one
#: interrupt amortizes the per-frame event overhead across the burst)
DEFAULT_RX_BATCH = 8


class Node:
    """Hardware for one modelled DECstation 5000/240 (optionally SMP)."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        cal: Calibration = DEFAULT,
        mem_size: int = 8 * 1024 * 1024,
        tracer: Optional[Tracer] = None,
        ncores: int = 1,
        rx_batch: Optional[int] = None,
    ):
        if ncores < 1:
            raise ValueError(f"{name}: need at least one core, got {ncores}")
        self.engine = engine
        self.name = name
        self.cal = cal
        self.memory = PhysicalMemory(mem_size)
        # the engine is the single source of truth for the substrate:
        # cache vectorization and the packet pool key off it together
        self.dcache = DirectMappedCache(cal, substrate=engine.substrate)
        self.ncores = ncores
        # core 0 keeps the historical ``<name>.cpu`` name so single-core
        # worlds (and their pinned telemetry/trace output) are unchanged
        self.cpus = [
            Cpu(engine, cal, name=f"{name}.cpu" if i == 0 else f"{name}.cpu{i}")
            for i in range(ncores)
        ]
        self.cpu = self.cpus[0]
        # NIC→kernel handoff batching: single-core nodes keep the
        # one-event-per-frame path unless a batch is requested explicitly
        self.rx_batch_opt = rx_batch
        self.rx_batch = rx_batch if rx_batch is not None else (
            DEFAULT_RX_BATCH if ncores > 1 else 1
        )
        self.tracer = tracer if tracer is not None else Tracer(engine)
        self.telemetry = Telemetry(engine, source=name, tracer=self.tracer)
        self.pktpool: Optional[PacketBufPool] = (
            PacketBufPool(self.memory, self.telemetry, name=name)
            if engine.substrate == "fast"
            else None
        )
        self.nics: dict[str, Nic] = {}
        #: installed by the kernel package at boot
        self.kernel: Optional["Kernel"] = None

    def add_nic(self, nic: Nic) -> Nic:
        if self.nics.get(nic.name) is nic:
            return nic  # idempotent re-add (bind is too)
        if nic.name in self.nics:
            raise ValueError(f"duplicate NIC name {nic.name!r} on {self.name}")
        self.nics[nic.name] = nic
        nic.bind(self)
        return nic

    def trace(self, tag: str, payload: object = None) -> None:
        self.telemetry.trace(self.name, tag, payload)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name} cores={self.ncores} nics={list(self.nics)}>"
