"""A node: CPU + caches + memory + NICs, the unit a kernel runs on."""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..sim.engine import Engine
from ..sim.trace import Tracer
from ..telemetry import Telemetry
from .cache import DirectMappedCache
from .calibration import Calibration, DEFAULT
from .cpu import Cpu
from .memory import PhysicalMemory
from .nic.base import Nic, PacketBufPool

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel

__all__ = ["Node"]


class Node:
    """Hardware for one modelled DECstation 5000/240."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        cal: Calibration = DEFAULT,
        mem_size: int = 8 * 1024 * 1024,
        tracer: Optional[Tracer] = None,
    ):
        self.engine = engine
        self.name = name
        self.cal = cal
        self.memory = PhysicalMemory(mem_size)
        # the engine is the single source of truth for the substrate:
        # cache vectorization and the packet pool key off it together
        self.dcache = DirectMappedCache(cal, substrate=engine.substrate)
        self.cpu = Cpu(engine, cal, name=f"{name}.cpu")
        self.tracer = tracer if tracer is not None else Tracer(engine)
        self.telemetry = Telemetry(engine, source=name, tracer=self.tracer)
        self.pktpool: Optional[PacketBufPool] = (
            PacketBufPool(self.memory, self.telemetry, name=name)
            if engine.substrate == "fast"
            else None
        )
        self.nics: dict[str, Nic] = {}
        #: installed by the kernel package at boot
        self.kernel: Optional["Kernel"] = None

    def add_nic(self, nic: Nic) -> Nic:
        if nic.name in self.nics:
            raise ValueError(f"duplicate NIC name {nic.name!r} on {self.name}")
        self.nics[nic.name] = nic
        nic.telemetry = self.telemetry
        nic.pktpool = self.pktpool
        return nic

    def trace(self, tag: str, payload: object = None) -> None:
        self.telemetry.trace(self.name, tag, payload)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name} nics={list(self.nics)}>"
