"""10 Mb/s Ethernet interface with a striping DMA engine.

Two properties from the paper shape this model:

* Receive buffers are a **limited, device-owned ring** ("the network
  buffers available to the device to receive into are limited, and
  therefore a message must not stay in them very long.  In this case,
  at least one copy is always necessary", Section V-A1).  Software must
  copy the frame out and return the buffer.
* The DMA engine **stripes**: "our Ethernet DMA engine stripes an
  N-byte contiguous packet into a 2N-byte buffer, alternating 16 bytes
  of data and 16 bytes of padding" (Section III-C).  The DILP back end
  must therefore emit a different copy loop for this interface.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..link import Frame
from .base import Nic, RxDescriptor

__all__ = ["EthernetNic", "STRIPE_CHUNK", "stripe_offset", "striped_size"]

#: Bytes of data per stripe (followed by the same amount of padding).
STRIPE_CHUNK = 16


def stripe_offset(i: int) -> int:
    """Buffer offset of payload byte ``i`` under the striping DMA layout."""
    return (i // STRIPE_CHUNK) * (2 * STRIPE_CHUNK) + (i % STRIPE_CHUNK)


def striped_size(nbytes: int) -> int:
    """Buffer space consumed by an ``nbytes`` payload when striped."""
    if nbytes == 0:
        return 0
    return stripe_offset(nbytes - 1) + 1


class EthernetNic(Nic):
    medium = "ethernet"

    #: ring depth: LANCE-class controllers had a handful of buffers
    DEFAULT_RING = 8

    def __init__(self, engine, cal, memory, name: str = "eth",
                 ring_slots: int = DEFAULT_RING):
        super().__init__(engine, cal, memory, name)
        self.ring_slots = ring_slots
        # Each slot must hold a striped MTU frame: 2x the payload bytes.
        slot_size = 2 * cal.eth_mtu + 2 * STRIPE_CHUNK
        self._slot_size = slot_size
        ring = memory.alloc(f"{name}.rxring", slot_size * ring_slots)
        self._free_slots: deque[int] = deque(
            ring.base + i * slot_size for i in range(ring_slots)
        )

    # -- ring management -------------------------------------------------------
    def return_slot(self, addr: int) -> None:
        """Software gives a receive-ring buffer back to the device."""
        self._free_slots.append(addr)

    @property
    def free_slot_count(self) -> int:
        return len(self._free_slots)

    # -- DMA ----------------------------------------------------------------
    def _dma(self, frame: Frame) -> Optional[RxDescriptor]:
        if len(frame.data) > self.cal.eth_mtu + 18:  # payload + 14B hdr + FCS
            self._drop_reason = "oversize"
            return None
        if not self._free_slots:
            self._drop_reason = "ring_exhausted"
            return None
        base = self._free_slots.popleft()
        data = frame.data
        # Stripe: 16 bytes of data, 16 bytes of padding, repeated.
        for start in range(0, len(data), STRIPE_CHUNK):
            chunk = data[start:start + STRIPE_CHUNK]
            self.memory.write(base + stripe_offset(start), chunk)
        return RxDescriptor(
            nic=self,
            frame=frame,
            addr=base,
            length=len(data),
            vci=None,
            striped=True,
            dma_span=striped_size(len(data)),
        )
