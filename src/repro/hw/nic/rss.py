"""Receive-side scaling: steer rx descriptors to cores before demux.

On an SMP node every received frame passes through an
application-definable *dispatch stage* between DMA completion and
kernel demultiplexing — the NIC decides which core's rx ring the
descriptor lands on, so DPF classification, the delivery hierarchy and
the handler all run on that core.  Like a DPF filter, the dispatcher is
pluggable (:meth:`repro.hw.nic.base.Nic.set_rss`): the default steers
by a deterministic hash of the flow identity (AN2 virtual circuit, or
the IPv4 4-tuple on the Ethernet) with *sticky affinity* — once a flow
is assigned a core it stays there until explicitly re-pinned, so
per-flow protocol state never bounces between caches mid-flow.

Determinism: steering is a pure function of frame bytes plus the flow
table, never of Python's salted ``hash()`` or any wall-clock input —
two runs of the same workload steer identically, which is what keeps
the fast/legacy substrates bit-identical under per-core interleaving.
"""

from __future__ import annotations

import struct
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ...hw.link import Frame
    from .base import RxDescriptor

__all__ = ["RssDispatcher", "fnv1a32", "flow_key"]

_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193

_ETHERTYPE_IP = b"\x08\x00"
_IPPROTO_TCP = 6
_IPPROTO_UDP = 17


def fnv1a32(data: bytes) -> int:
    """FNV-1a over ``data`` — explicit, never Python's salted ``hash``."""
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & 0xFFFFFFFF
    return h


def flow_key(frame: "Frame") -> tuple:
    """The default flow identity of one wire frame.

    * AN2: the virtual circuit *is* the flow (the switch demultiplexes
      by connection identifier, so should receive-side dispatch).
    * Ethernet carrying IPv4: the classic 4-tuple
      (src, dst, proto, src-port, dst-port).
    * anything else: the first 32 payload bytes (deterministic, and all
      a dispatcher can know without a protocol parser).
    """
    if frame.vci is not None:
        return ("vci", frame.vci)
    data = frame.data
    if len(data) >= 34 and data[12:14] == _ETHERTYPE_IP \
            and (data[14] >> 4) == 4:
        ihl = (data[14] & 0x0F) * 4
        proto = data[23]
        src, dst = struct.unpack("!II", data[26:34])
        l4 = 14 + ihl
        if proto in (_IPPROTO_TCP, _IPPROTO_UDP) and len(data) >= l4 + 4:
            sport, dport = struct.unpack("!HH", data[l4:l4 + 4])
            return ("ip4", src, dst, proto, sport, dport)
        return ("ip4", src, dst, proto, 0, 0)
    return ("raw", bytes(data[:32]))


class RssDispatcher:
    """Deterministic hash dispatch with a sticky flow-affinity table.

    The NIC calls :meth:`steer` once per successfully DMA'd frame;
    applications may subclass and override :meth:`select_core` (the
    policy) while keeping the flow table, accounting and telemetry, or
    replace the whole object via ``nic.set_rss``.
    """

    def __init__(self, ncores: int, telemetry=None, nic_name: str = "nic"):
        self.ncores = ncores
        self.telemetry = telemetry
        self.nic_name = nic_name
        #: sticky affinity: flow key -> pinned core
        self.flow_table: dict[tuple, int] = {}
        self.steered = [0] * ncores
        self.migrations = 0

    # -- policy (override point) ------------------------------------------
    def select_core(self, key: tuple, frame: "Frame") -> int:
        """Pick a core for a flow not yet in the table."""
        if self.ncores == 1:
            return 0
        return fnv1a32(repr(key).encode()) % self.ncores

    # -- the dispatch stage -------------------------------------------------
    def steer(self, desc: "RxDescriptor") -> int:
        """Assign ``desc`` to a core (recorded on ``desc.core``)."""
        key = flow_key(desc.frame)
        core = self.flow_table.get(key)
        if core is None:
            core = self.select_core(key, desc.frame)
            self.flow_table[key] = core
        desc.core = core
        self.steered[core] += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("rss.steered", nic=self.nic_name, core=str(core)).inc()
        return core

    def repin(self, key: tuple, core: int) -> None:
        """Explicitly migrate a flow to ``core`` (load shedding, the
        application knows better than the hash)."""
        if not 0 <= core < self.ncores:
            raise ValueError(f"core {core} out of range (ncores={self.ncores})")
        old = self.flow_table.get(key)
        self.flow_table[key] = core
        if old is not None and old != core:
            self.migrations += 1
            tel = self.telemetry
            if tel is not None and tel.enabled:
                tel.counter("rss.migrations", nic=self.nic_name).inc()

    # -- introspection ------------------------------------------------------
    def rebind(self, ncores: int, telemetry=None,
               nic_name: Optional[str] = None) -> None:
        """Re-home the dispatcher when its NIC binds to a node."""
        if ncores != self.ncores:
            self.ncores = ncores
            self.flow_table.clear()
            self.steered = [0] * ncores
        self.telemetry = telemetry
        if nic_name is not None:
            self.nic_name = nic_name

    def publish_telemetry(self, hub=None) -> None:
        tel = hub if hub is not None else self.telemetry
        if tel is None or not tel.enabled:
            return
        tel.gauge("rss.flows", nic=self.nic_name).set(len(self.flow_table))

    def stats(self) -> dict:
        return {
            "ncores": self.ncores,
            "flows": len(self.flow_table),
            "steered": list(self.steered),
            "migrations": self.migrations,
        }
