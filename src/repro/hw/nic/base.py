"""Common NIC machinery.

A NIC sits between a :class:`repro.hw.link.Link` and the node's kernel.
Receive DMA places frame bytes into node memory and hands the kernel an
:class:`RxDescriptor`; the kernel (not the NIC) charges CPU time for
interrupt handling, cache flushing and demultiplexing, because those are
software costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from ...sim.engine import Engine
from ..calibration import Calibration
from ..link import Frame, Link

if TYPE_CHECKING:  # pragma: no cover
    from ..memory import PhysicalMemory

__all__ = ["RxDescriptor", "Nic"]


@dataclass
class RxDescriptor:
    """Where a received frame landed."""

    nic: "Nic"
    frame: Frame
    addr: int              #: physical address of the DMA'd payload
    length: int            #: payload length in bytes
    vci: Optional[int]     #: AN2 virtual circuit, None for Ethernet
    striped: bool = False  #: True when the DMA engine striped the data
    meta: dict[str, Any] = field(default_factory=dict)


class Nic:
    """Base class: link attachment, tx, rx dispatch and drop counting."""

    #: subclasses set a human-readable medium name
    medium = "nic"

    def __init__(self, engine: Engine, cal: Calibration,
                 memory: "PhysicalMemory", name: str):
        self.engine = engine
        self.cal = cal
        self.memory = memory
        self.name = name
        self.link: Optional[Link] = None
        self.link_end: int = 0
        #: the kernel installs this; called with an RxDescriptor
        self.rx_callback: Optional[Callable[[RxDescriptor], None]] = None
        #: the owning node installs its telemetry hub in ``add_nic``
        self.telemetry = None
        self.rx_frames = 0
        self.tx_frames = 0
        self.rx_dropped = 0

    def attach(self, link: Link, end: int) -> None:
        self.link = link
        self.link_end = end
        link.attach(end, self._on_wire_frame)

    # -- transmit ----------------------------------------------------------
    def transmit(self, frame: Frame) -> None:
        """Hand a frame to the DMA engine (no CPU charge here)."""
        if self.link is None:
            raise RuntimeError(f"{self.name}: not attached to a link")
        self.tx_frames += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("nic.tx_frames", nic=self.name).inc()
            tel.counter("nic.tx_bytes", nic=self.name).inc(len(frame.data))
        self.link.send(self.link_end, frame)

    # -- receive ----------------------------------------------------------
    def _on_wire_frame(self, frame: Frame) -> None:
        desc = self._dma(frame)
        tel = self.telemetry
        if desc is None:
            self.rx_dropped += 1
            if tel is not None and tel.enabled:
                tel.counter("nic.rx_dropped", nic=self.name).inc()
            return
        self.rx_frames += 1
        if tel is not None and tel.enabled:
            tel.counter("nic.rx_frames", nic=self.name).inc()
            tel.counter("nic.rx_bytes", nic=self.name).inc(desc.length)
            # the packet-lifecycle span starts here, riding on the
            # descriptor through the whole delivery hierarchy
            now = self.engine.now
            span = tel.spans.begin(f"{self.name}.rx", now)
            span.stage("nic_rx", now)
            desc.meta["span"] = span
        if self.rx_callback is not None:
            self.rx_callback(desc)

    def _dma(self, frame: Frame) -> Optional[RxDescriptor]:
        """Place the frame in memory; None means 'no buffer, drop'."""
        raise NotImplementedError
