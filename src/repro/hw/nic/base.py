"""Common NIC machinery.

A NIC sits between a :class:`repro.hw.link.Link` and the node's kernel.
Receive DMA places frame bytes into node memory and hands the kernel an
:class:`RxDescriptor`; the kernel (not the NIC) charges CPU time for
interrupt handling, cache flushing and demultiplexing, because those are
software costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from ...sim.engine import Engine
from ...telemetry.tracecontext import adopt_rx_context, attach_tx_context
from ..calibration import Calibration
from ..link import Frame, Link

if TYPE_CHECKING:  # pragma: no cover
    from ..memory import PhysicalMemory

__all__ = ["RxDescriptor", "PacketBuf", "PacketBufPool", "Nic"]


@dataclass
class RxDescriptor:
    """Where a received frame landed."""

    nic: "Nic"
    frame: Frame
    addr: int              #: physical address of the DMA'd payload
    length: int            #: payload length in bytes
    vci: Optional[int]     #: AN2 virtual circuit, None for Ethernet
    striped: bool = False  #: True when the DMA engine striped the data
    dma_span: int = 0      #: bytes of memory the DMA engine occupied
                           #: (striped layouts occupy more than ``length``)
    buf: Optional["PacketBuf"] = None  #: pooled window over the DMA span
    meta: dict[str, Any] = field(default_factory=dict)


class PacketBuf:
    """A pooled zero-copy window over a DMA'd packet in node memory.

    The ``view`` aliases the live receive buffer: it stays valid only
    until the buffer is recycled to the NIC, which is why the kernel
    releases the :class:`PacketBuf` exactly when it recycles or
    replenishes the underlying slot.  Consumers that keep payload past
    that point (applications, reassembly) must materialize ``bytes``.
    """

    __slots__ = ("addr", "span", "view", "_pool")

    def __init__(self, pool: "PacketBufPool"):
        self._pool = pool
        self.addr = 0
        self.span = 0
        self.view: Optional[memoryview] = None

    def release(self) -> None:
        self._pool.release(self)


class PacketBufPool:
    """Free-list of :class:`PacketBuf` wrappers for one node.

    Pooling the wrappers (and counting reuse) makes the zero-copy path
    observable: ``datapath.pktbuf.*`` telemetry shows every packet hop
    handing off a view instead of materializing bytes.
    """

    def __init__(self, memory: "PhysicalMemory", telemetry=None,
                 name: str = "pktbuf"):
        self.memory = memory
        self.telemetry = telemetry
        self.name = name
        self._free: list[PacketBuf] = []
        self.created = 0
        self.reused = 0
        self.acquired = 0
        self.released = 0

    @property
    def in_flight(self) -> int:
        return self.acquired - self.released

    def acquire(self, addr: int, span: int) -> PacketBuf:
        tel = self.telemetry
        if self._free:
            buf = self._free.pop()
            self.reused += 1
            if tel is not None and tel.enabled:
                tel.counter("datapath.pktbuf.reused", pool=self.name).inc()
        else:
            buf = PacketBuf(self)
            self.created += 1
            if tel is not None and tel.enabled:
                tel.counter("datapath.pktbuf.created", pool=self.name).inc()
        buf.addr = addr
        buf.span = span
        buf.view = self.memory.read_view(addr, span)
        self.acquired += 1
        if tel is not None and tel.enabled:
            tel.counter("datapath.pktbuf.acquired", pool=self.name).inc()
        return buf

    def release(self, buf: PacketBuf) -> None:
        if buf.view is None:
            return  # already released (idempotent: recycle + replenish paths)
        buf.view = None
        self._free.append(buf)
        self.released += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("datapath.pktbuf.released", pool=self.name).inc()

    def publish_telemetry(self, hub=None) -> None:
        """Snapshot pool gauges into a hub (end-of-run export)."""
        tel = hub if hub is not None else self.telemetry
        if tel is None or not tel.enabled:
            return
        tel.gauge("datapath.pktbuf.in_flight", pool=self.name).set(self.in_flight)
        tel.gauge("datapath.pktbuf.free", pool=self.name).set(len(self._free))

    def stats(self) -> dict:
        return {
            "created": self.created,
            "reused": self.reused,
            "acquired": self.acquired,
            "released": self.released,
            "in_flight": self.in_flight,
        }


class Nic:
    """Base class: link attachment, tx, rx dispatch and drop counting."""

    #: subclasses set a human-readable medium name
    medium = "nic"

    def __init__(self, engine: Engine, cal: Calibration,
                 memory: "PhysicalMemory", name: str):
        self.engine = engine
        self.cal = cal
        self.memory = memory
        self.name = name
        self.link: Optional[Link] = None
        self.link_end: int = 0
        #: the kernel installs this; called with an RxDescriptor
        self.rx_callback: Optional[Callable[[RxDescriptor], None]] = None
        #: the owning node installs its telemetry hub in ``add_nic``
        self.telemetry = None
        #: the owning node installs its PacketBufPool in ``add_nic``
        #: (fast substrate only; None keeps the legacy bytes path)
        self.pktpool: Optional[PacketBufPool] = None
        self.rx_frames = 0
        self.tx_frames = 0
        self.rx_dropped = 0
        self.tx_dropped = 0
        #: True while the owning node is crashed: the device neither
        #: receives (frames drop as ``node_down``) nor transmits
        self.down = False
        #: why frames were dropped, by reason (backpressure telemetry)
        self.drop_reasons: dict[str, int] = {}
        #: fault-injection seam: a FaultPlane installs a NicStress here
        #: (see repro.sim.faults); None = the device behaves
        self.stress = None
        #: subclasses set this before returning None from _dma
        self._drop_reason = "no_buffer"

    def attach(self, link: Link, end: int) -> None:
        self.link = link
        self.link_end = end
        link.attach(end, self._on_wire_frame)

    # -- transmit ----------------------------------------------------------
    def transmit(self, frame: Frame) -> None:
        """Hand a frame to the DMA engine (no CPU charge here)."""
        if self.link is None:
            raise RuntimeError(f"{self.name}: not attached to a link")
        if self.down:
            self.tx_dropped += 1
            self.drop_reasons["node_down_tx"] = \
                self.drop_reasons.get("node_down_tx", 0) + 1
            return
        self.tx_frames += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("nic.tx_frames", nic=self.name).inc()
            tel.counter("nic.tx_bytes", nic=self.name).inc(len(frame.data))
            # trace context rides Frame.meta: sidecar only, never part
            # of len(frame) and therefore of any wire or CPU cost
            attach_tx_context(tel, self.engine, frame)
        self.link.send(self.link_end, frame)

    # -- receive ----------------------------------------------------------
    def _count_drop(self, reason: str) -> None:
        """One dropped rx frame, attributed to ``reason``."""
        self.rx_dropped += 1
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("nic.rx_dropped", nic=self.name, reason=reason).inc()

    def _on_wire_frame(self, frame: Frame) -> None:
        if self.down:
            self._count_drop("node_down")
            return
        stress = self.stress
        if stress is not None:
            frame = stress.on_rx(frame)
            if frame is None:  # injected ring exhaustion
                self._count_drop("stress_exhaust")
                return
        self._drop_reason = "no_buffer"
        desc = self._dma(frame)
        tel = self.telemetry
        if desc is None:
            self._count_drop(self._drop_reason)
            return
        self.rx_frames += 1
        if self.pktpool is not None \
                and not self.memory.pressure_gate("pktbuf"):
            # a refused wrapper allocation degrades to the legacy bytes
            # path (desc.buf stays None, which every consumer handles)
            desc.buf = self.pktpool.acquire(desc.addr, desc.dma_span or desc.length)
        if tel is not None and tel.enabled:
            tel.counter("nic.rx_frames", nic=self.name).inc()
            tel.counter("nic.rx_bytes", nic=self.name).inc(desc.length)
            # the packet-lifecycle span starts here, riding on the
            # descriptor through the whole delivery hierarchy
            now = self.engine.now
            span = tel.spans.begin(f"{self.name}.rx", now)
            span.stage("nic_rx", now)
            adopt_rx_context(tel, frame, span)
            desc.meta["span"] = span
        if self.rx_callback is not None:
            self.rx_callback(desc)

    def _dma(self, frame: Frame) -> Optional[RxDescriptor]:
        """Place the frame in memory; None means 'no buffer, drop'."""
        raise NotImplementedError
