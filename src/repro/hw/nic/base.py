"""Common NIC machinery.

A NIC sits between a :class:`repro.hw.link.Link` and the node's kernel.
Receive DMA places frame bytes into node memory and hands the kernel an
:class:`RxDescriptor`; the kernel (not the NIC) charges CPU time for
interrupt handling, cache flushing and demultiplexing, because those are
software costs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from ...sim.engine import Engine
from ...telemetry.tracecontext import adopt_rx_context, attach_tx_context
from ..calibration import Calibration
from ..link import Frame, Link
from .rss import RssDispatcher

if TYPE_CHECKING:  # pragma: no cover
    from ..memory import PhysicalMemory
    from ..node import Node

__all__ = ["RxDescriptor", "PacketBuf", "PacketBufPool", "Nic"]


@dataclass
class RxDescriptor:
    """Where a received frame landed."""

    nic: "Nic"
    frame: Frame
    addr: int              #: physical address of the DMA'd payload
    length: int            #: payload length in bytes
    vci: Optional[int]     #: AN2 virtual circuit, None for Ethernet
    striped: bool = False  #: True when the DMA engine striped the data
    dma_span: int = 0      #: bytes of memory the DMA engine occupied
                           #: (striped layouts occupy more than ``length``)
    buf: Optional["PacketBuf"] = None  #: pooled window over the DMA span
    core: int = 0          #: cpu the RSS dispatch stage steered this to
    meta: dict[str, Any] = field(default_factory=dict)


class PacketBuf:
    """A pooled zero-copy window over a DMA'd packet in node memory.

    The ``view`` aliases the live receive buffer: it stays valid only
    until the buffer is recycled to the NIC, which is why the kernel
    releases the :class:`PacketBuf` exactly when it recycles or
    replenishes the underlying slot.  Consumers that keep payload past
    that point (applications, reassembly) must materialize ``bytes``.
    """

    __slots__ = ("addr", "span", "view", "_pool")

    def __init__(self, pool: "PacketBufPool"):
        self._pool = pool
        self.addr = 0
        self.span = 0
        self.view: Optional[memoryview] = None

    def release(self) -> None:
        self._pool.release(self)


class PacketBufPool:
    """Free-list of :class:`PacketBuf` wrappers for one node.

    Pooling the wrappers (and counting reuse) makes the zero-copy path
    observable: ``datapath.pktbuf.*`` telemetry shows every packet hop
    handing off a view instead of materializing bytes.
    """

    def __init__(self, memory: "PhysicalMemory", telemetry=None,
                 name: str = "pktbuf"):
        self.memory = memory
        self.telemetry = telemetry
        self.name = name
        self._free: list[PacketBuf] = []
        self.created = 0
        self.reused = 0
        self.acquired = 0
        self.released = 0

    @property
    def in_flight(self) -> int:
        return self.acquired - self.released

    def acquire(self, addr: int, span: int) -> PacketBuf:
        tel = self.telemetry
        if self._free:
            buf = self._free.pop()
            self.reused += 1
            if tel is not None and tel.enabled:
                tel.counter("datapath.pktbuf.reused", pool=self.name).inc()
        else:
            buf = PacketBuf(self)
            self.created += 1
            if tel is not None and tel.enabled:
                tel.counter("datapath.pktbuf.created", pool=self.name).inc()
        buf.addr = addr
        buf.span = span
        buf.view = self.memory.read_view(addr, span)
        self.acquired += 1
        if tel is not None and tel.enabled:
            tel.counter("datapath.pktbuf.acquired", pool=self.name).inc()
        return buf

    def release(self, buf: PacketBuf) -> None:
        if buf.view is None:
            return  # already released (idempotent: recycle + replenish paths)
        buf.view = None
        self._free.append(buf)
        self.released += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("datapath.pktbuf.released", pool=self.name).inc()

    def publish_telemetry(self, hub=None) -> None:
        """Snapshot pool gauges into a hub (end-of-run export)."""
        tel = hub if hub is not None else self.telemetry
        if tel is None or not tel.enabled:
            return
        tel.gauge("datapath.pktbuf.in_flight", pool=self.name).set(self.in_flight)
        tel.gauge("datapath.pktbuf.free", pool=self.name).set(len(self._free))

    def stats(self) -> dict:
        return {
            "created": self.created,
            "reused": self.reused,
            "acquired": self.acquired,
            "released": self.released,
            "in_flight": self.in_flight,
        }


class Nic:
    """Base class: link attachment, tx, rx dispatch and drop counting."""

    #: subclasses set a human-readable medium name
    medium = "nic"

    def __init__(self, engine: Engine, cal: Calibration,
                 memory: "PhysicalMemory", name: str):
        self.engine = engine
        self.cal = cal
        self.memory = memory
        self.name = name
        self.link: Optional[Link] = None
        self.link_end: int = 0
        #: the kernel installs this; called with an RxDescriptor
        self.rx_callback: Optional[Callable[[RxDescriptor], None]] = None
        #: the kernel installs this on SMP nodes; called with
        #: ``(nic, core)`` after a descriptor lands on a per-core ring
        self.rx_kick: Optional[Callable[["Nic", int], None]] = None
        #: the owning node, installed by :meth:`bind` (via ``add_nic``);
        #: a standalone NIC (unit tests) keeps None and runs untelemetered
        self.node: Optional["Node"] = None
        #: the owning node's telemetry hub, installed by :meth:`bind`
        self.telemetry = None
        #: the owning node's PacketBufPool, installed by :meth:`bind`
        #: (fast substrate only; None keeps the legacy bytes path)
        self.pktpool: Optional[PacketBufPool] = None
        # -- receive-side scaling (re-homed by bind on SMP nodes) -------
        self.ncores = 1
        #: frames drained per kernel handoff (bind copies the node's)
        self.rx_batch = 1
        #: True once descriptors go through per-core rings + rx_kick
        #: instead of one rx_callback event per frame
        self.batched = False
        self.rx_rings: list[deque] = [deque()]
        self.ring_peaks: list[int] = [0]
        #: the dispatch stage; created at bind, replaceable via set_rss
        self.rss: Optional[RssDispatcher] = None
        self.rx_frames = 0
        self.tx_frames = 0
        self.rx_dropped = 0
        self.tx_dropped = 0
        #: True while the owning node is crashed: the device neither
        #: receives (frames drop as ``node_down``) nor transmits
        self.down = False
        #: why frames were dropped, by reason (backpressure telemetry)
        self.drop_reasons: dict[str, int] = {}
        #: fault-injection seam: a FaultPlane installs a NicStress here
        #: (see repro.sim.faults); None = the device behaves
        self.stress = None
        #: tenant-admission seam: a TenantManager installs itself here
        #: (see repro.ash.tenancy); None = no per-tenant quotas
        self.admission = None
        #: subclasses set this before returning None from _dma
        self._drop_reason = "no_buffer"

    def bind(self, node: "Node") -> "Nic":
        """Adopt the owning node's telemetry, packet pool and topology.

        One atomic step (called by ``Node.add_nic``) instead of the old
        post-hoc attribute pokes, so a NIC can never run half-configured:
        either it is bound — telemetry, pool, rings and RSS all wired —
        or it is a deliberately standalone unit-test device.
        """
        if self.node is node:
            return self
        if self.node is not None:
            raise RuntimeError(
                f"{self.name}: already bound to node {self.node.name}"
            )
        if node.memory is not self.memory:
            raise RuntimeError(
                f"{self.name}: constructed over a different memory than "
                f"node {node.name}'s"
            )
        if self.tx_frames or self.rx_frames:
            # the failure mode bind exists to kill: a NIC that carried
            # traffic before attach silently ran with telemetry=None
            raise RuntimeError(
                f"{self.name}: carried traffic ({self.tx_frames} tx / "
                f"{self.rx_frames} rx frames) before being bound to "
                f"{node.name} — bind the NIC before attaching workloads"
            )
        self.node = node
        self.telemetry = node.telemetry
        self.pktpool = node.pktpool
        self.ncores = node.ncores
        self.rx_batch = node.rx_batch
        # single-core nodes keep the direct one-event-per-frame handoff
        # (identical event schedule to the pre-SMP kernel) unless the
        # node explicitly asked for batching
        self.batched = node.ncores > 1 or node.rx_batch_opt is not None
        self.rx_rings = [deque() for _ in range(self.ncores)]
        self.ring_peaks = [0] * self.ncores
        if self.rss is None:
            self.rss = RssDispatcher(
                self.ncores, telemetry=self.telemetry, nic_name=self.name
            )
        else:  # installed before bind: re-home it
            self.rss.rebind(self.ncores, telemetry=self.telemetry,
                            nic_name=self.name)
        return self

    def set_rss(self, dispatcher: RssDispatcher) -> RssDispatcher:
        """Install an application-defined dispatch stage (pluggable the
        way a DPF filter is: policy from above, mechanism stays here)."""
        dispatcher.rebind(self.ncores, telemetry=self.telemetry,
                          nic_name=self.name)
        self.rss = dispatcher
        return dispatcher

    def attach(self, link: Link, end: int) -> None:
        self.link = link
        self.link_end = end
        link.attach(end, self._on_wire_frame)

    # -- transmit ----------------------------------------------------------
    def transmit(self, frame: Frame) -> None:
        """Hand a frame to the DMA engine (no CPU charge here)."""
        if self.link is None:
            raise RuntimeError(f"{self.name}: not attached to a link")
        if self.down:
            self.tx_dropped += 1
            self.drop_reasons["node_down_tx"] = \
                self.drop_reasons.get("node_down_tx", 0) + 1
            return
        self.tx_frames += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("nic.tx_frames", nic=self.name).inc()
            tel.counter("nic.tx_bytes", nic=self.name).inc(len(frame.data))
            # trace context rides Frame.meta: sidecar only, never part
            # of len(frame) and therefore of any wire or CPU cost
            attach_tx_context(tel, self.engine, frame)
        self.link.send(self.link_end, frame)

    # -- receive ----------------------------------------------------------
    def _count_drop(self, reason: str) -> None:
        """One dropped rx frame, attributed to ``reason``."""
        self.rx_dropped += 1
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("nic.rx_dropped", nic=self.name, reason=reason).inc()

    def _on_wire_frame(self, frame: Frame) -> None:
        if self.down:
            self._count_drop("node_down")
            return
        stress = self.stress
        if stress is not None:
            frame = stress.on_rx(frame)
            if frame is None:  # injected ring exhaustion
                self._count_drop("stress_exhaust")
                return
        admission = self.admission
        if admission is not None:
            # per-tenant quota check *before* DMA: a clipped frame
            # consumes no buffer, no interrupt and no CPU, so one
            # tenant's flood cannot perturb another tenant's schedule
            reason = admission.check(self, frame)
            if reason is not None:
                self._count_drop(reason)
                return
        self._drop_reason = "no_buffer"
        desc = self._dma(frame)
        tel = self.telemetry
        if desc is None:
            self._count_drop(self._drop_reason)
            return
        self.rx_frames += 1
        if self.pktpool is not None \
                and (admission is None or admission.pktbuf_ok(self, frame)) \
                and not self.memory.pressure_gate("pktbuf"):
            # a refused wrapper allocation degrades to the legacy bytes
            # path (desc.buf stays None, which every consumer handles)
            desc.buf = self.pktpool.acquire(desc.addr, desc.dma_span or desc.length)
        if tel is not None and tel.enabled:
            tel.counter("nic.rx_frames", nic=self.name).inc()
            tel.counter("nic.rx_bytes", nic=self.name).inc(desc.length)
            # the packet-lifecycle span starts here, riding on the
            # descriptor through the whole delivery hierarchy
            now = self.engine.now
            span = tel.spans.begin(f"{self.name}.rx", now)
            span.stage("nic_rx", now)
            adopt_rx_context(tel, frame, span)
            desc.meta["span"] = span
        # the RSS dispatch stage runs on every successfully DMA'd frame
        # (dropped frames are never steered, so per-core steered counts
        # always sum to rx_frames), *before* any kernel demultiplexing
        core = self.rss.steer(desc) if self.rss is not None else 0
        if self.batched:
            ring = self.rx_rings[core]
            ring.append(desc)
            depth = len(ring)
            if depth > self.ring_peaks[core]:
                self.ring_peaks[core] = depth
            if self.rx_kick is not None:
                self.rx_kick(self, core)
        elif self.rx_callback is not None:
            self.rx_callback(desc)

    def publish_telemetry(self, hub=None) -> None:
        """Snapshot per-core ring gauges + RSS flow table into a hub."""
        tel = hub if hub is not None else self.telemetry
        if tel is None or not tel.enabled:
            return
        for core, ring in enumerate(self.rx_rings):
            label = str(core)
            tel.gauge("core.ring_depth", nic=self.name, core=label) \
                .set(len(ring))
            tel.gauge("core.ring_peak_depth", nic=self.name, core=label) \
                .set(self.ring_peaks[core])
        if self.rss is not None:
            self.rss.publish_telemetry(tel)

    def _dma(self, frame: Frame) -> Optional[RxDescriptor]:
        """Place the frame in memory; None means 'no buffer, drop'."""
        raise NotImplementedError
