"""AN2 ATM network interface.

Models the properties Section IV-A relies on:

* **Demultiplexing by virtual circuit**: "the AN2 device is securely
  exported by using the ATM connection identifier to demultiplex
  packets."
* **Application-provided receive buffers**: "processes bind to a
  virtual circuit identifier, providing a section of their memory for
  messages to be DMA'ed to" — the NIC "can DMA messages into any
  location in physical memory" (Section V-A1), which is what makes true
  zero-copy possible.
* **A notification ring per VC** shared between kernel and user, so a
  polling application can discover arrivals without a system call.

A frame arriving on an unbound VCI, or on a VCI whose buffer ring is
exhausted, is dropped (counted in ``rx_dropped``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ...errors import DemuxError
from ..link import Frame
from .base import Nic, RxDescriptor

__all__ = ["An2Nic", "VcBinding"]


@dataclass
class VcBinding:
    """State for one bound virtual circuit."""

    vci: int
    buffers: deque          #: free (addr, size) pairs, FIFO
    owner: object = None    #: opaque owner tag (the binding process)
    #: refills refused under injected memory pressure, parked until the
    #: next successful replenish flushes them (no buffer is ever lost)
    deferred: list = None

    def replenish(self, addr: int, size: int) -> None:
        self.buffers.append((addr, size))


class An2Nic(Nic):
    medium = "an2"

    def __init__(self, engine, cal, memory, name: str = "an2"):
        super().__init__(engine, cal, memory, name)
        self._bindings: dict[int, VcBinding] = {}

    # -- virtual circuits ---------------------------------------------------
    def bind_vci(self, vci: int, buffers: list[tuple[int, int]],
                 owner: object = None) -> VcBinding:
        """Bind ``vci`` with an initial set of (addr, size) rx buffers."""
        if vci in self._bindings:
            raise DemuxError(f"VCI {vci} already bound on {self.name}")
        for _addr, size in buffers:
            if size < self.cal.an2_max_packet:
                raise DemuxError(
                    f"VCI {vci}: rx buffer of {size} bytes is smaller than "
                    f"the {self.cal.an2_max_packet}-byte maximum packet"
                )
        binding = VcBinding(vci=vci, buffers=deque(buffers), owner=owner)
        self._bindings[vci] = binding
        return binding

    def unbind_vci(self, vci: int) -> None:
        self._bindings.pop(vci, None)

    def binding(self, vci: int) -> Optional[VcBinding]:
        return self._bindings.get(vci)

    def replenish(self, vci: int, addr: int, size: int) -> None:
        """Return (or replace) a receive buffer for ``vci``.

        The paper: "The application is allowed to use those message
        buffers directly, as long as it eventually returns or replaces
        them."
        """
        binding = self._bindings.get(vci)
        if binding is None:
            raise DemuxError(f"VCI {vci} not bound on {self.name}")
        if self.memory.pressure_gate("rx_refill"):
            # degradation, not loss: the refused refill is parked and
            # flushed by the next successful one — meanwhile the ring is
            # one buffer shorter, so sustained pressure shows up as
            # ``no_buffer`` drops, never as a vanished buffer
            if binding.deferred is None:
                binding.deferred = []
            binding.deferred.append((addr, size))
            return
        binding.replenish(addr, size)
        if binding.deferred:
            for pair in binding.deferred:
                binding.replenish(*pair)
            binding.deferred = None

    # -- DMA ----------------------------------------------------------------
    def _dma(self, frame: Frame) -> Optional[RxDescriptor]:
        if frame.vci is None:
            self._drop_reason = "unbound_vci"
            return None
        binding = self._bindings.get(frame.vci)
        if binding is None:
            self._drop_reason = "unbound_vci"
            return None
        if not binding.buffers:
            # defer before drop: a tenant at its held-buffer quota gets
            # its oldest outstanding buffer revoked back into the ring
            if self.admission is not None:
                self.admission.on_ring_empty(self, frame.vci)
            if not binding.buffers:
                self._drop_reason = "no_buffer"
                if self.admission is not None:
                    self.admission.note_no_buffer(self, frame.vci)
                return None
        if len(frame.data) > self.cal.an2_max_packet:
            self._drop_reason = "oversize"
            return None
        addr, _size = binding.buffers.popleft()
        self.memory.write(addr, frame.data)
        return RxDescriptor(
            nic=self,
            frame=frame,
            addr=addr,
            length=len(frame.data),
            vci=frame.vci,
            striped=False,
            dma_span=len(frame.data),
        )
