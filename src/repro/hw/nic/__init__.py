"""Network interface models (AN2 ATM and 10 Mb/s Ethernet)."""

from .base import Nic, RxDescriptor
from .an2 import An2Nic, VcBinding
from .ethernet import EthernetNic, STRIPE_CHUNK, stripe_offset, striped_size
from .rss import RssDispatcher, flow_key, fnv1a32

__all__ = [
    "Nic",
    "RxDescriptor",
    "An2Nic",
    "VcBinding",
    "EthernetNic",
    "STRIPE_CHUNK",
    "stripe_offset",
    "striped_size",
    "RssDispatcher",
    "flow_key",
    "fnv1a32",
]
