"""Physical memory for one node: a flat byte array plus region accounting.

Every buffer the modelled system uses — NIC receive rings, protocol
buffers, application data structures, ASH scratch space — is carved out
of one :class:`PhysicalMemory` with a bump allocator.  Addresses are
plain integers, which is what lets the sandboxer do real range checks
and lets the cache model attribute misses to real locations.

The DECstations ran MIPS in little-endian mode, so multi-byte loads and
stores are little-endian; network byte order is handled where it
belongs, in :mod:`repro.net.headers`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AllocationError, MemoryFault

__all__ = ["Region", "PhysicalMemory"]

_ALIGN = 16  # allocate on cache-line boundaries


@dataclass(frozen=True)
class Region:
    """A named, contiguous span of physical memory."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end


class PhysicalMemory:
    """Byte-addressable memory with range-checked accessors."""

    def __init__(self, size: int = 8 * 1024 * 1024):
        self.size = size
        self.data = bytearray(size)
        self.view = np.frombuffer(self.data, dtype=np.uint8)
        self._mv = memoryview(self.data)
        self._brk = _ALIGN  # keep address 0 unmapped: it makes bugs loud
        self.regions: dict[str, Region] = {}
        #: fault-injection seam: a FaultPlane installs a MemPressure
        #: injector here (see repro.sim.faults); None = allocations
        #: always succeed while physical memory lasts
        self.pressure = None
        #: injected allocation failures observed, by site
        self.alloc_failures: dict[str, int] = {}

    # -- allocation -------------------------------------------------------
    def pressure_gate(self, site: str) -> bool:
        """One allocation attempt at ``site``; True when injected memory
        pressure refuses it.  Call sites that allocate without going
        through :meth:`alloc` (packet-buffer wrappers, rx-ring refills)
        consult this gate directly and degrade on refusal."""
        injector = self.pressure
        if injector is None or not injector.should_fail(site):
            return False
        self.alloc_failures[site] = self.alloc_failures.get(site, 0) + 1
        return True

    def alloc(self, name: str, size: int, align: int = _ALIGN,
              site: str | None = None) -> Region:
        """Carve a new region; names must be unique per node.

        ``site`` labels the allocating call site for the fault plane's
        memory-pressure seam; a gated site raises
        :class:`~repro.errors.AllocationError` (counted under
        ``mem.alloc_failures{site}``) which the caller must degrade on.
        Genuine exhaustion still raises :class:`MemoryError`.
        """
        if site is not None and self.pressure_gate(site):
            raise AllocationError(site, name)
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        if size <= 0:
            raise ValueError(f"region {name!r}: size must be positive")
        base = self._brk
        if base % align:
            base += align - base % align
        if base + size > self.size:
            raise MemoryError(
                f"out of physical memory allocating {name!r} ({size} bytes)"
            )
        self._brk = base + size
        region = Region(name, base, size)
        self.regions[name] = region
        return region

    # -- checked accessors ---------------------------------------------------
    def _check(self, addr: int, size: int) -> None:
        if addr < _ALIGN or addr + size > self.size or size < 0:
            raise MemoryFault(f"physical access out of range: [{addr}, {addr + size})")

    def read(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        return bytes(self.data[addr:addr + size])

    def read_view(self, addr: int, size: int) -> memoryview:
        """A zero-copy window over ``[addr, addr+size)``.

        The view aliases live memory: it changes if the range is
        rewritten (e.g. a receive buffer being replenished), so callers
        that outlive the buffer must materialize with ``bytes()``.
        """
        self._check(addr, size)
        return self._mv[addr:addr + size]

    def copy_range(self, src: int, dst: int, size: int) -> None:
        """Bulk memory-to-memory copy (no cycle accounting)."""
        self._check(src, size)
        self._check(dst, size)
        self.view[dst:dst + size] = self.view[src:src + size]

    def write(self, addr: int, payload: bytes | bytearray | memoryview) -> None:
        self._check(addr, len(payload))
        self.data[addr:addr + len(payload)] = payload

    def load_u8(self, addr: int) -> int:
        self._check(addr, 1)
        return self.data[addr]

    def store_u8(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self.data[addr] = value & 0xFF

    def load_u16(self, addr: int) -> int:
        self._check(addr, 2)
        return int.from_bytes(self.data[addr:addr + 2], "little")

    def store_u16(self, addr: int, value: int) -> None:
        self._check(addr, 2)
        self.data[addr:addr + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def load_u32(self, addr: int) -> int:
        self._check(addr, 4)
        return int.from_bytes(self.data[addr:addr + 4], "little")

    def store_u32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        self.data[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    # -- numpy windows (used by the compiled DILP kernels) -------------------
    def u8_window(self, addr: int, size: int) -> np.ndarray:
        self._check(addr, size)
        return self.view[addr:addr + size]

    def u32_window(self, addr: int, size: int) -> np.ndarray:
        """A little-endian uint32 view; ``size`` must be a multiple of 4."""
        self._check(addr, size)
        if size % 4:
            raise MemoryFault(f"u32 window size {size} not a multiple of 4")
        return self.view[addr:addr + size].view("<u4")
