"""The CPU: a single execution resource with cycle accounting.

Everything that consumes processor time — kernel interrupt handlers,
ASH execution, protocol library code, application computation — runs by
holding the CPU and advancing virtual time with
:meth:`Cpu.exec`.  The CPU is a priority lock: device interrupts
(priority 0) get the processor ahead of kernel work (5) ahead of user
code (10).  The holder is preempted only at *charge-quantum* boundaries
(default 200 cycles = 5 µs), modelling interrupt delivery at instruction
granularity without per-instruction event overhead.

``exec`` is a generator: call it as ``yield from cpu.exec(cycles)``
from inside a simulation process.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.engine import Engine, Event, Timeout
from ..sim.queues import PriorityLock
from ..sim.units import CYCLE_PS
from .calibration import Calibration, PRIO_USER

__all__ = ["Cpu"]


class Cpu:
    """One processor with a cycle ledger."""

    def __init__(self, engine: Engine, cal: Calibration, name: str = "cpu"):
        self.engine = engine
        self.cal = cal
        self.name = name
        self.lock = PriorityLock(engine, f"{name}.lock")
        self.busy_ticks = 0            # total held-and-computing time
        self.cycles_charged = 0
        #: fault-injection seam: a FaultPlane installs a CpuContention
        #: injector here (see repro.sim.faults); None = no one else is
        #: competing for the processor
        self.contention = None
        #: cycles stolen by injected contention bursts (foreign work:
        #: held the CPU but advanced nobody's charge)
        self.contention_cycles = 0

    # -- core execution primitive -----------------------------------------
    def exec(
        self,
        cycles: int,
        prio: int = PRIO_USER,
        quantum: Optional[int] = None,
    ) -> Generator[Event, None, None]:
        """Hold the CPU for ``cycles`` cycles at priority ``prio``.

        Execution is sliced into quanta; between quanta the CPU is
        yielded to any *more urgent* waiter (then re-acquired), so an
        interrupt arriving mid-computation is served within one quantum.
        """
        cycles = int(cycles)
        if cycles < 0:
            raise ValueError(f"negative cycle charge: {cycles}")
        if cycles == 0:
            return
        if quantum is None:
            quantum = self.cal.exec_quantum_cycles
        engine = self.engine
        lock = self.lock
        waiters = lock._waiters
        yield lock.acquire(prio)
        try:
            injector = self.contention
            if injector is not None:
                stolen = injector.steal()
                if stolen:
                    # foreign work holds the CPU first: wall-clock
                    # stretches, but none of it counts toward ``cycles``
                    yield Timeout(engine, stolen * CYCLE_PS)
                    self.contention_cycles += stolen
            remaining = cycles
            while remaining > 0:
                slice_cycles = remaining if remaining < quantum else quantum
                start = engine._now
                yield Timeout(engine, slice_cycles * CYCLE_PS)
                self.busy_ticks += engine._now - start
                self.cycles_charged += slice_cycles
                remaining -= slice_cycles
                if remaining > 0 and waiters and waiters[0][0] < prio:
                    lock.release()
                    yield lock.acquire(prio)
        finally:
            lock.release()

    def _should_yield_to_waiter(self, prio: int) -> bool:
        waiting = self.lock.waiting_priority()
        return waiting is not None and waiting < prio

    # -- convenience wrappers -------------------------------------------------
    def exec_us(
        self, usec: float, prio: int = PRIO_USER, quantum: Optional[int] = None
    ) -> Generator[Event, None, None]:
        """Hold the CPU for a duration expressed in microseconds."""
        yield from self.exec(self.cal.us_to_cycles(usec), prio, quantum)

    @property
    def busy_us(self) -> float:
        return self.busy_ticks / 1_000_000
