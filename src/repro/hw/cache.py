"""Direct-mapped write-through data-cache model.

The DECstation 5000/240 has a 64 KB direct-mapped write-through data
cache with a write buffer.  The model captures exactly the effects the
paper's Tables III and IV depend on:

* a **load** of a line not present stalls for ``miss_penalty_cycles``
  and installs the line,
* a **store** drains through the write buffer without a stall and (in
  the default configuration) installs the line, so data just written is
  warm for a subsequent traversal,
* an explicit **flush** (the paper flushes the message region after DMA
  and between benchmark iterations) evicts lines so the next traversal
  misses again.

The cache tracks *tags only* — data lives in
:class:`repro.hw.memory.PhysicalMemory` — because a write-through cache
never holds dirty data, so correctness never depends on cached bytes.
"""

from __future__ import annotations

from typing import Optional

from .calibration import Calibration

__all__ = ["DirectMappedCache"]


class DirectMappedCache:
    """Tag store + cycle accounting for a direct-mapped cache."""

    def __init__(self, cal: Calibration):
        self.cal = cal
        self.line = cal.cache_line
        self.nlines = cal.cache_size // cal.cache_line
        # tags[i] is the full line address cached in set i, or -1.
        self._tags = [-1] * self.nlines
        self.hits = 0
        self.misses = 0

    # -- internals -------------------------------------------------------
    def _index(self, line_addr: int) -> int:
        return (line_addr // self.line) % self.nlines

    # -- single accesses ---------------------------------------------------
    def load(self, addr: int, size: int) -> int:
        """Account for a load of ``size`` bytes at ``addr``.

        Returns the stall cycles incurred (0 if every touched line hits).
        """
        return self.touch_range(addr, size, is_store=False)

    def store(self, addr: int, size: int) -> int:
        """Account for a store; write-through stores never stall."""
        return self.touch_range(addr, size, is_store=True)

    # -- bulk accesses -----------------------------------------------------
    def touch_range(self, addr: int, size: int, is_store: bool = False) -> int:
        """Walk every line in ``[addr, addr+size)``; return stall cycles.

        This is the primitive both the VCODE interpreter (word at a
        time) and the compiled DILP kernels (whole buffers at once) use,
        so both charge identical miss costs for identical access
        patterns.
        """
        if size <= 0:
            return 0
        first = addr - (addr % self.line)
        last = addr + size - 1
        stall = 0
        tags = self._tags
        line = self.line
        for line_addr in range(first, last + 1, line):
            idx = (line_addr // line) % self.nlines
            if tags[idx] == line_addr:
                self.hits += 1
            else:
                self.misses += 1
                if is_store:
                    if self.cal.store_installs_line:
                        tags[idx] = line_addr
                else:
                    stall += self.cal.miss_penalty_cycles
                    tags[idx] = line_addr
        return stall

    def miss_count_range(self, addr: int, size: int) -> int:
        """How many lines of the range would currently miss (no update)."""
        if size <= 0:
            return 0
        first = addr - (addr % self.line)
        last = addr + size - 1
        return sum(
            1
            for line_addr in range(first, last + 1, self.line)
            if self._tags[(line_addr // self.line) % self.nlines] != line_addr
        )

    # -- flushes -----------------------------------------------------------
    def flush_range(self, addr: int, size: int) -> None:
        """Invalidate every line overlapping ``[addr, addr+size)``."""
        if size <= 0:
            return
        first = addr - (addr % self.line)
        last = addr + size - 1
        for line_addr in range(first, last + 1, self.line):
            idx = self._index(line_addr)
            if self._tags[idx] == line_addr:
                self._tags[idx] = -1

    def flush_all(self) -> None:
        self._tags = [-1] * self.nlines

    # -- inspection ----------------------------------------------------------
    def contains(self, addr: int) -> bool:
        line_addr = addr - (addr % self.line)
        return self._tags[self._index(line_addr)] == line_addr

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
