"""Direct-mapped write-through data-cache model.

The DECstation 5000/240 has a 64 KB direct-mapped write-through data
cache with a write buffer.  The model captures exactly the effects the
paper's Tables III and IV depend on:

* a **load** of a line not present stalls for ``miss_penalty_cycles``
  and installs the line,
* a **store** drains through the write buffer without a stall and (in
  the default configuration) installs the line, so data just written is
  warm for a subsequent traversal,
* an explicit **flush** (the paper flushes the message region after DMA
  and between benchmark iterations) evicts lines so the next traversal
  misses again.

The cache tracks *tags only* — data lives in
:class:`repro.hw.memory.PhysicalMemory` — because a write-through cache
never holds dirty data, so correctness never depends on cached bytes.

The tag store is an ``array('q')`` with a shared ``numpy`` int64 view
over the same buffer.  Scalar probes (the VCODE interpreter and the
JIT's inlined cache model index ``_tags`` one line at a time) stay
plain-int fast, while bulk range operations — whole-packet copies,
checksums and flushes — run in O(lines) numpy arithmetic on the ``fast``
substrate.  Both paths compute identical hit/miss counts and stall
cycles; ``REPRO_SIM_SUBSTRATE=legacy`` forces the scalar walks
everywhere (the original behavior).
"""

from __future__ import annotations

from array import array
from typing import Optional

import numpy as np

from ..sim.engine import active_substrate
from .calibration import Calibration

__all__ = ["DirectMappedCache"]

#: ranges touching at most this many lines take the scalar walk even on
#: the fast substrate: numpy call overhead beats the loop only beyond it
_SCALAR_CUTOFF = 8


class DirectMappedCache:
    """Tag store + cycle accounting for a direct-mapped cache."""

    def __init__(self, cal: Calibration, substrate: Optional[str] = None):
        self.cal = cal
        self.line = cal.cache_line
        self.nlines = cal.cache_size // cal.cache_line
        # tags[i] is the full line address cached in set i, or -1.
        # array('q') + frombuffer share one buffer: scalar int indexing
        # for the interpreter/JIT, vectorized gathers for bulk ranges.
        self._tags = array("q", bytes(8 * self.nlines))
        self._tags_np = np.frombuffer(self._tags, dtype=np.int64)
        self._tags_np.fill(-1)
        self._vectorized = active_substrate(substrate) == "fast"
        self.hits = 0
        self.misses = 0

    # -- internals -------------------------------------------------------
    def _index(self, line_addr: int) -> int:
        return (line_addr // self.line) % self.nlines

    def _span(self, addr: int, size: int) -> tuple[int, int]:
        """(first line address, number of lines) for ``[addr, addr+size)``."""
        first = addr - (addr % self.line)
        nl = (addr + size - 1 - first) // self.line + 1
        return first, nl

    # -- single accesses ---------------------------------------------------
    def load(self, addr: int, size: int) -> int:
        """Account for a load of ``size`` bytes at ``addr``.

        Returns the stall cycles incurred (0 if every touched line hits).
        """
        return self.touch_range(addr, size, is_store=False)

    def store(self, addr: int, size: int) -> int:
        """Account for a store; write-through stores never stall."""
        return self.touch_range(addr, size, is_store=True)

    # -- bulk accesses -----------------------------------------------------
    def touch_range(self, addr: int, size: int, is_store: bool = False) -> int:
        """Walk every line in ``[addr, addr+size)``; return stall cycles.

        This is the primitive both the VCODE interpreter (word at a
        time) and the compiled DILP kernels (whole buffers at once) use,
        so both charge identical miss costs for identical access
        patterns.  Wide ranges vectorize on the fast substrate; the
        result (hits, misses, stalls, final tag state) is bit-identical
        to the scalar walk.
        """
        if size <= 0:
            return 0
        first, nl = self._span(addr, size)
        if not self._vectorized or nl <= _SCALAR_CUTOFF:
            return self._touch_scalar(first, nl, is_store)
        return self._touch_vector(first, nl, is_store)

    def _touch_scalar(self, first: int, nl: int, is_store: bool) -> int:
        stall = 0
        tags = self._tags
        line = self.line
        nlines = self.nlines
        install = self.cal.store_installs_line
        penalty = self.cal.miss_penalty_cycles
        for line_addr in range(first, first + nl * line, line):
            idx = (line_addr // line) % nlines
            if tags[idx] == line_addr:
                self.hits += 1
            else:
                self.misses += 1
                if is_store:
                    if install:
                        tags[idx] = line_addr
                else:
                    stall += penalty
                    tags[idx] = line_addr
        return stall

    def _touch_vector(self, first: int, nl: int, is_store: bool) -> int:
        tags = self._tags_np
        line = self.line
        nlines = self.nlines
        line_addrs = first + np.arange(nl, dtype=np.int64) * line
        idx = (line_addrs // line) % nlines
        if is_store and not self.cal.store_installs_line:
            # tags never change: probe everything against current state
            hits = int((tags[idx] == line_addrs).sum())
            self.hits += hits
            self.misses += nl - hits
            return 0
        if nl <= nlines:
            # all set indices distinct: gather, compare, install
            hits = int((tags[idx] == line_addrs).sum())
            tags[idx] = line_addrs
        else:
            # the range wraps the cache: only the first pass over the
            # sets can hit pre-existing tags (every later touch of a set
            # probes a line installed by this very walk — a different
            # line address, hence a guaranteed miss); the final state is
            # the last writer of each set, i.e. the range's last
            # ``nlines`` lines.
            hits = int((tags[idx[:nlines]] == line_addrs[:nlines]).sum())
            tags[idx[-nlines:]] = line_addrs[-nlines:]
        misses = nl - hits
        self.hits += hits
        self.misses += misses
        return 0 if is_store else misses * self.cal.miss_penalty_cycles

    def miss_count_range(self, addr: int, size: int) -> int:
        """How many lines of the range would currently miss (no update)."""
        if size <= 0:
            return 0
        first, nl = self._span(addr, size)
        line = self.line
        nlines = self.nlines
        if self._vectorized and nl > _SCALAR_CUTOFF:
            line_addrs = first + np.arange(nl, dtype=np.int64) * line
            idx = (line_addrs // line) % nlines
            return nl - int((self._tags_np[idx] == line_addrs).sum())
        tags = self._tags
        return sum(
            1
            for line_addr in range(first, first + nl * line, line)
            if tags[(line_addr // line) % nlines] != line_addr
        )

    # -- flushes -----------------------------------------------------------
    def flush_range(self, addr: int, size: int) -> None:
        """Invalidate every line overlapping ``[addr, addr+size)``."""
        if size <= 0:
            return
        first, nl = self._span(addr, size)
        line = self.line
        nlines = self.nlines
        if self._vectorized and nl > _SCALAR_CUTOFF:
            tags = self._tags_np
            if nl >= nlines:
                # every resident tag sits in its own set (installs only
                # ever go to _index(tag)), so a plain value-range mask
                # finds exactly the lines the scalar walk would evict
                last = first + (nl - 1) * line
                tags[(tags >= first) & (tags <= last)] = -1
            else:
                line_addrs = first + np.arange(nl, dtype=np.int64) * line
                idx = (line_addrs // line) % nlines
                sel = tags[idx] == line_addrs
                tags[idx[sel]] = -1
            return
        tags = self._tags
        for line_addr in range(first, first + nl * line, line):
            idx = (line_addr // line) % nlines
            if tags[idx] == line_addr:
                tags[idx] = -1

    def flush_all(self) -> None:
        # in place: the numpy view (and the JIT's ``_tags`` alias) must
        # keep seeing the same buffer
        self._tags_np.fill(-1)

    # -- inspection ----------------------------------------------------------
    def contains(self, addr: int) -> bool:
        line_addr = addr - (addr % self.line)
        return self._tags[self._index(line_addr)] == line_addr

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
