"""Point-to-point wire model: serialization + fixed latency.

A :class:`Link` joins exactly two endpoints (NICs).  Each direction
serializes frames at the link rate — a frame cannot start transmitting
until the previous one has left the wire — and then arrives after a
fixed one-way latency.  For the AN2 the fixed latency is the paper's
48 µs hardware one-way overhead (96 µs round trip, Section IV-C); for
the Ethernet it models adapter DMA and deference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..sim.engine import Engine
from ..sim.units import seconds, us

__all__ = ["Frame", "Link"]


@dataclass
class Frame:
    """What travels on a wire: opaque payload bytes plus demux metadata."""

    data: bytes
    vci: Optional[int] = None       #: AN2 virtual-circuit identifier
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.data)


class Link:
    """Full-duplex point-to-point wire."""

    def __init__(
        self,
        engine: Engine,
        rate_bytes_per_s: float,
        latency_us: float,
        min_frame: int = 0,
        name: str = "link",
    ):
        if rate_bytes_per_s <= 0:
            raise ValueError("link rate must be positive")
        self.engine = engine
        self.rate = rate_bytes_per_s
        self.latency_ticks = us(latency_us)
        self.min_frame = min_frame
        self.name = name
        # Two unidirectional channels; index by sender end (0 or 1).
        self._ends: list[Optional[Callable[[Frame], None]]] = [None, None]
        self._free_at = [0, 0]
        self.frames_sent = [0, 0]
        self.bytes_sent = [0, 0]
        #: fault-injection seam: a FaultPlane installs a LinkImpairment
        #: here (see repro.sim.faults); None = the wire is perfect
        self.impairment = None

    def attach(self, end: int, deliver: Callable[[Frame], None]) -> None:
        """Register the receive function for endpoint ``end`` (0 or 1)."""
        if end not in (0, 1):
            raise ValueError("link end must be 0 or 1")
        self._ends[end] = deliver

    def wire_time_ticks(self, nbytes: int) -> int:
        """Serialization time for a frame of ``nbytes`` payload bytes."""
        wire_bytes = max(nbytes, self.min_frame)
        return seconds(wire_bytes / self.rate)

    def send(self, from_end: int, frame: Frame) -> int:
        """Enqueue ``frame`` from ``from_end``; returns arrival time.

        The call itself is instantaneous for the sender (DMA engines
        stream the frame out without CPU involvement); serialization and
        latency are modelled on the wire.
        """
        to_end = 1 - from_end
        deliver = self._ends[to_end]
        if deliver is None:
            raise RuntimeError(f"{self.name}: end {to_end} not attached")
        now = self.engine.now
        start = max(now, self._free_at[from_end])
        tx_done = start + self.wire_time_ticks(len(frame.data))
        self._free_at[from_end] = tx_done
        arrival = tx_done + self.latency_ticks
        self.frames_sent[from_end] += 1
        self.bytes_sent[from_end] += len(frame.data)
        imp = self.impairment
        if imp is None:
            self.engine._schedule(arrival, deliver, frame)
        else:
            # the impairment decides what actually comes off the wire:
            # nothing (drop), the frame late (delay/reorder), a mangled
            # copy (corrupt), or several copies (duplicate)
            for when, out in imp.on_send(from_end, frame, arrival):
                self.engine._schedule(when, deliver, out)
        return arrival
