"""repro: a full reproduction of "ASHs: Application-Specific Handlers
for High-Performance Messaging" (Wallach, Engler, Kaashoek; SIGCOMM 96).

The package is organised the way the paper's system was:

* :mod:`repro.sim` — deterministic discrete-event substrate,
* :mod:`repro.hw` — the modelled DECstation pair, caches, AN2/Ethernet,
* :mod:`repro.vcode` — the VCODE code-generation language and VM,
* :mod:`repro.sandbox` — download-time verification + SFI rewriting,
* :mod:`repro.pipes` — dynamic integrated layer processing,
* :mod:`repro.kernel` — the Aegis-like exokernel (processes, DPF,
  schedulers, upcalls),
* :mod:`repro.ash` — the ASH system itself,
* :mod:`repro.net` — the user-level protocol libraries (ARP/IP/UDP/TCP
  with the downloadable fast path, HTTP, NFS),
* :mod:`repro.bench` — testbeds and the paper's experiments.

Quick start (see ``examples/quickstart.py`` for the narrated version)::

    from repro import make_an2_pair, build_echo, Frame

    tb = make_an2_pair()
    ep = tb.server_kernel.create_endpoint_an2(tb.server_nic, vci=1)
    params = tb.server.memory.alloc("params", 16)
    ash_id = tb.server_kernel.ash_system.download(
        build_echo(), [(params.base, 16)], user_word=params.base)
    tb.server_kernel.ash_system.bind(ep, ash_id)
"""

from .ash import (
    ASH_CONSUMED,
    ASH_PASS,
    AshBuilder,
    AshSystem,
    build_echo,
    build_remote_increment,
    build_remote_write_generic,
    build_remote_write_specific,
)
from .bench.testbed import Testbed, make_an2_pair, make_eth_pair
from .hw import Calibration, Frame, Link, Node
from .kernel import Endpoint, Kernel, Predicate, Process, UpcallHandler
from .pipes import (
    PIPE_INPLACE,
    PIPE_READ,
    PIPE_WRITE,
    compile_pl,
    mk_byteswap_pipe,
    mk_cksum_pipe,
    mk_xor_pipe,
    pipel,
)
from .sandbox import BudgetPolicy, SandboxPolicy, Sandboxer
from .vcode import VBuilder, Vm

__version__ = "1.0.0"

__all__ = [
    "ASH_CONSUMED",
    "ASH_PASS",
    "AshBuilder",
    "AshSystem",
    "build_echo",
    "build_remote_increment",
    "build_remote_write_generic",
    "build_remote_write_specific",
    "Testbed",
    "make_an2_pair",
    "make_eth_pair",
    "Calibration",
    "Frame",
    "Link",
    "Node",
    "Endpoint",
    "Kernel",
    "Predicate",
    "Process",
    "UpcallHandler",
    "PIPE_INPLACE",
    "PIPE_READ",
    "PIPE_WRITE",
    "compile_pl",
    "mk_byteswap_pipe",
    "mk_cksum_pipe",
    "mk_xor_pipe",
    "pipel",
    "BudgetPolicy",
    "SandboxPolicy",
    "Sandboxer",
    "VBuilder",
    "Vm",
    "__version__",
]
