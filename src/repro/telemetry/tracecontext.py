"""Cross-node trace context: message ids riding frames as sidecar data.

The paper's tables measure one node at a time; stitching a *causal*
cross-node timeline needs the sender's identity to travel with the
message.  This module does that without perturbing the simulation:

* a **trace id** is minted per transmitted frame from the engine's
  monotonic counter (`Engine.next_trace_id`), so ids are run-unique and
  identical runs mint identical ids;
* the context rides in ``Frame.meta`` — a sidecar dict that never
  contributes to ``len(frame)``, serialization time, checksums or any
  modelled cost.  Fault-plane frame clones copy ``meta``, so impaired /
  duplicated frames keep their lineage;
* everything here runs **only when the node's telemetry hub is
  enabled**: with telemetry off, no context is attached and simulated
  results are bit-identical (the invariant the determinism tests pin).

At transmit time the context is attributed to the node's *active span*
(the message currently being delivered) when there is one, which gives
``to_chrome_trace`` the request -> reply edge; at receive time the rx
span adopts the frame's context, which gives the sender -> receiver
edge.  Both are rendered as Chrome flow events (``ph:"s"``/``"f"``).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.link import Frame
    from ..sim.engine import Engine
    from .hub import Telemetry
    from .spans import Span

__all__ = ["TRACE_KEY", "attach_tx_context", "adopt_rx_context"]

#: the Frame.meta / RxDescriptor.meta key the context rides under
TRACE_KEY = "trace"


def attach_tx_context(tel: "Telemetry", engine: "Engine",
                      frame: "Frame") -> None:
    """Stamp an outgoing frame with a fresh trace context.

    Callers gate on ``tel.enabled``.  A frame that already carries a
    context (an impairment-duplicated clone) keeps it — the duplicate
    is the *same* wire message, not a new causal event.
    """
    if TRACE_KEY in frame.meta:
        return
    trace_id = engine.next_trace_id()
    frame.meta[TRACE_KEY] = {"id": trace_id, "src": tel.source}
    tel.spans.note_tx_flow(trace_id, engine.now)


def adopt_rx_context(tel: "Telemetry", frame: "Frame",
                     span: Optional["Span"]) -> None:
    """Bind a received frame's trace context to its rx span."""
    ctx = frame.meta.get(TRACE_KEY)
    if ctx is None or span is None:
        return
    span.trace_id = ctx["id"]
    span.trace_src = ctx["src"]
