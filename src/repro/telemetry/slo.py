"""Per-flow SLO tracking: latency quantiles, health counters, rules.

Flows are TCP/UDP 4-tuples ``(local_ip, local_port, remote_ip,
remote_port)``.  Each flow gets

* a deterministic **log2-bucket latency histogram**
  (``flow.latency_us``, :data:`~repro.telemetry.metrics.LOG2_US_BUCKETS`)
  from which p50/p99/p999 are derivable from any snapshot via
  :func:`~repro.telemetry.metrics.hist_quantile`,
* **health counters** — ``flow.goodput_bytes``, ``flow.tx_segments`` /
  ``flow.rx_segments``, ``flow.losses`` (checksum-failed / corrupt
  segments), ``flow.retransmits``, ``flow.aborts`` — all riding the
  ordinary metrics registry so they appear in every sidecar,
* declarative **SLO rules** (:class:`SloRule`), evaluated at
  observation time: each breach increments the counted, labelled
  ``slo.violations{rule,flow}`` metric, appends a timestamped violation
  record, and lands in the node's flight recorder.

Everything is observation-driven and deterministic — no timers, no
sampling — and a disabled hub reduces every entry point to one branch.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from .metrics import LOG2_US_BUCKETS, hist_quantile

if TYPE_CHECKING:  # pragma: no cover
    from .hub import Telemetry

__all__ = ["SloRule", "FlowStats", "SloTracker", "flow_label"]

#: violation records retained per node (the counter keeps exact totals)
MAX_VIOLATIONS = 1000


def flow_label(flow: tuple) -> str:
    """Render a 4-tuple as the stable label used on flow metrics."""
    lip, lport, rip, rport = flow
    return f"{lip:#010x}:{lport}->{rip:#010x}:{rport}"


class SloRule:
    """One declarative objective; unset thresholds are not checked.

    ``max_latency_us`` breaches per observation above the bound;
    ``max_retransmits`` / ``max_losses`` / ``max_aborts`` /
    ``max_recoveries`` (fast-recovery episodes — congestion events, a
    coarser health signal than raw retransmits) breach on every event
    past the cumulative budget (so the violation count tracks how far
    past the objective the flow went).
    """

    __slots__ = ("name", "max_latency_us", "max_retransmits",
                 "max_losses", "max_aborts", "max_recoveries")

    def __init__(self, name: str, max_latency_us: Optional[float] = None,
                 max_retransmits: Optional[int] = None,
                 max_losses: Optional[int] = None,
                 max_aborts: Optional[int] = None,
                 max_recoveries: Optional[int] = None):
        self.name = name
        self.max_latency_us = max_latency_us
        self.max_retransmits = max_retransmits
        self.max_losses = max_losses
        self.max_aborts = max_aborts
        self.max_recoveries = max_recoveries

    def describe(self) -> dict:
        out = {"name": self.name}
        for key in ("max_latency_us", "max_retransmits", "max_losses",
                    "max_aborts", "max_recoveries"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


class FlowStats:
    """Cached per-flow instruments + rule evaluation for one 4-tuple."""

    __slots__ = ("tracker", "flow", "label", "latency", "_goodput",
                 "_tx", "_rx", "_losses", "_retransmits", "_aborts",
                 "_recoveries")

    def __init__(self, tracker: "SloTracker", flow: tuple):
        self.tracker = tracker
        self.flow = flow
        self.label = flow_label(flow)
        reg = tracker.telemetry.registry
        self.latency = reg.histogram("flow.latency_us",
                                     buckets=LOG2_US_BUCKETS,
                                     flow=self.label)
        self._goodput = reg.counter("flow.goodput_bytes", flow=self.label)
        self._tx = reg.counter("flow.tx_segments", flow=self.label)
        self._rx = reg.counter("flow.rx_segments", flow=self.label)
        self._losses = reg.counter("flow.losses", flow=self.label)
        self._retransmits = reg.counter("flow.retransmits", flow=self.label)
        self._aborts = reg.counter("flow.aborts", flow=self.label)
        self._recoveries = reg.counter("flow.recoveries", flow=self.label)

    # -- observations --------------------------------------------------
    def observe_latency_us(self, v: float, t: int) -> None:
        tracker = self.tracker
        if not tracker.telemetry.enabled:
            return
        self.latency.observe(v)
        for rule in tracker.rules:
            if rule.max_latency_us is not None and v > rule.max_latency_us:
                tracker.violate(rule, self, t, "latency_us", v)

    def goodput(self, nbytes: int) -> None:
        self._goodput.inc(nbytes)

    def tx_segment(self, nbytes: int = 0) -> None:
        self._tx.inc()

    def rx_segment(self, nbytes: int = 0) -> None:
        self._rx.inc()

    def loss(self, t: int) -> None:
        self._counted_event(self._losses, t, "losses", "max_losses")

    def retransmit(self, t: int) -> None:
        self._counted_event(self._retransmits, t, "retransmits",
                            "max_retransmits")

    def abort(self, t: int) -> None:
        self._counted_event(self._aborts, t, "aborts", "max_aborts")

    def recovery(self, t: int) -> None:
        """One fast-recovery episode entered (a congestion event)."""
        self._counted_event(self._recoveries, t, "recoveries",
                            "max_recoveries")

    def _counted_event(self, counter, t: int, metric: str,
                       threshold_attr: str) -> None:
        tracker = self.tracker
        if not tracker.telemetry.enabled:
            return
        counter.inc()
        for rule in tracker.rules:
            bound = getattr(rule, threshold_attr)
            if bound is not None and counter.value > bound:
                tracker.violate(rule, self, t, metric, counter.value)

    # -- derived -------------------------------------------------------
    def quantiles(self) -> dict:
        """p50/p99/p999 of this flow's latency distribution, in us."""
        data = self.latency._data()
        return {
            "p50_us": hist_quantile(data, 0.50),
            "p99_us": hist_quantile(data, 0.99),
            "p999_us": hist_quantile(data, 0.999),
        }


class SloTracker:
    """Per-node flow table + rule set + violation ledger."""

    def __init__(self, telemetry: "Telemetry"):
        self.telemetry = telemetry
        self.flows: dict[tuple, FlowStats] = {}
        self.rules: list[SloRule] = []
        self.violations: list[dict] = []
        self.violations_dropped = 0

    def flow(self, flow: tuple) -> FlowStats:
        stats = self.flows.get(flow)
        if stats is None:
            stats = FlowStats(self, flow)
            self.flows[flow] = stats
        return stats

    def add_rule(self, rule: SloRule) -> SloRule:
        self.rules.append(rule)
        return rule

    def violate(self, rule: SloRule, stats: FlowStats, t: int,
                metric: str, value) -> None:
        tel = self.telemetry
        tel.registry.counter("slo.violations", rule=rule.name,
                             flow=stats.label).inc()
        if len(self.violations) < MAX_VIOLATIONS:
            self.violations.append({
                "t": t,
                "rule": rule.name,
                "flow": stats.label,
                "metric": metric,
                "value": value,
            })
        else:
            self.violations_dropped += 1
        tel.flight.record("slo", t, rule=rule.name, flow=stats.label,
                          metric=metric, value=value)

    def snapshot(self) -> dict:
        """Deterministic block for the node's metrics sidecar."""
        return {
            "rules": [r.describe() for r in self.rules],
            "flows": {
                stats.label: stats.quantiles()
                for _flow, stats in sorted(self.flows.items())
            },
            "violations": list(self.violations),
            "violations_dropped": self.violations_dropped,
        }
