"""The per-node telemetry hub: registry + spans + trace routing.

One :class:`Telemetry` is attached to every :class:`~repro.hw.node.Node`
at construction.  It is **disabled by default** — the simulation's
modelled costs never depend on it, and a disabled hub costs one branch
per instrumented call site — and is switched on either explicitly
(``node.telemetry.enable()``) or for a whole run via
:func:`repro.telemetry.session` / :func:`repro.telemetry.configure`.

The old :class:`~repro.sim.trace.Tracer` plugs in underneath: every
``node.trace(...)`` emit is routed through the hub, which forwards it to
the tracer (still honouring the tracer's own enable/tag gates) and, when
telemetry is on, counts it as a ``trace.events`` metric.  Old code and
tests that talk to the tracer directly keep working unchanged.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, TYPE_CHECKING

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import SpanTracker

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine
    from ..sim.trace import Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Everything one node knows about its own behaviour."""

    def __init__(
        self,
        engine: "Engine",
        source: str = "node",
        tracer: Optional["Tracer"] = None,
        enabled: Optional[bool] = None,
    ):
        from . import _default_enabled, _register  # module-level run config

        self.engine = engine
        self.source = source
        self.tracer = tracer
        if enabled is None:
            enabled = _default_enabled()
        self.registry = MetricsRegistry(enabled=enabled)
        self.spans = SpanTracker(self)
        # SLO tracker and flight recorder are created on first touch so
        # nodes that never see a flow or a failure stay lean
        self._slo = None
        self._flight = None
        _register(self)

    # -- switching -----------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def enable(self) -> None:
        self.registry.enabled = True

    def disable(self) -> None:
        self.registry.enabled = False

    # -- lazy subsystems -----------------------------------------------
    @property
    def slo(self):
        """The per-flow SLO tracker (created on first access)."""
        if self._slo is None:
            from .slo import SloTracker

            self._slo = SloTracker(self)
        return self._slo

    @property
    def flight(self):
        """The crash-surviving flight recorder (created on first access)."""
        if self._flight is None:
            from .flightrec import FlightRecorder

            self._flight = FlightRecorder(self)
        return self._flight

    def configure_flight(self, capacity: int):
        """Create (or resize) the flight recorder with a given ring
        capacity, replacing the hard-coded default.  Returns it."""
        if self._flight is None:
            from .flightrec import FlightRecorder

            self._flight = FlightRecorder(self, capacity=capacity)
        else:
            self._flight.resize(capacity)
        return self._flight

    # -- instrument shortcuts ------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        return self.registry.histogram(name, buckets=buckets, **labels)

    # -- trace routing -------------------------------------------------
    def trace(self, source: str, tag: str, payload: Any = None) -> None:
        """Route a trace emit: tracer record + (if enabled) a counter.

        ``payload`` may be a zero-arg callable; it is only resolved if a
        tracer actually records it (see :meth:`Tracer.emit`).
        """
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(source, tag, payload)
        if self.registry.enabled:
            self.registry.counter("trace.events", tag=tag).inc()

    # -- export --------------------------------------------------------
    def snapshot(self, include_span_events: bool = True) -> dict:
        from .export import node_snapshot

        return node_snapshot(self, include_span_events=include_span_events)

    def format_table(self) -> str:
        from .export import format_table

        return format_table(self.snapshot(include_span_events=False))
