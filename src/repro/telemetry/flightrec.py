"""The flight recorder: a crash-surviving ring of recent events.

Forensics with the exokernel split applied to observability.  The
recorder is a bounded ring of recent span / fault / degradation / SLO
events that lives in *application* memory — a plain per-node Python
object owned by the telemetry hub, exactly like the TCP ``SharedTcb``
region — so ``Kernel.crash()``, which tears down every piece of
kernel-volatile state, cannot touch it.  When something terminal
happens (a kernel crash, an involuntary ASH abort, a ``ProtocolError``)
the ring is dumped as a schema-validated JSON post-mortem: the last
``capacity`` events leading up to the failure, without a re-run.

Everything is deterministic and telemetry-gated: with the hub disabled,
``record``/``dump`` are one branch each and no state changes.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .hub import Telemetry

__all__ = [
    "FLIGHT_SCHEMA",
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
]

FLIGHT_SCHEMA = "repro-flightrec"
FLIGHT_SCHEMA_VERSION = 1

#: events retained in the ring (older ones age out, counted)
DEFAULT_CAPACITY = 256

#: post-mortems retained per node (a chaos sweep can dump many; the
#: first ones are kept — they describe the *original* failure)
MAX_POSTMORTEMS = 8


class FlightRecorder:
    """Bounded event ring + post-mortem dumps for one node."""

    def __init__(self, telemetry: "Telemetry",
                 capacity: int = DEFAULT_CAPACITY):
        self.telemetry = telemetry
        self.capacity = capacity
        self.events: deque[dict] = deque(maxlen=capacity)
        self.recorded = 0          #: total events ever recorded
        self.dumps = 0             #: total post-mortems ever dumped
        self.postmortems: list[dict] = []

    @property
    def aged_out(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.recorded - len(self.events)

    def resize(self, capacity: int) -> None:
        """Change the ring capacity in place.

        Shrinking keeps the *newest* events (the deque drops from the
        left), matching what a smaller ring would have retained; growing
        cannot resurrect aged-out events.  ``recorded``/``aged_out``
        accounting is preserved either way.
        """
        if capacity < 1:
            raise ValueError(f"flight ring capacity must be >= 1: {capacity}")
        if capacity == self.capacity:
            return
        self.capacity = capacity
        self.events = deque(self.events, maxlen=capacity)

    def record(self, kind: str, t: int, **detail) -> None:
        """Append one event (no-op while telemetry is disabled)."""
        if not self.telemetry.enabled:
            return
        event = {"t": t, "kind": kind}
        event.update(detail)
        self.events.append(event)
        self.recorded += 1

    def dump(self, reason: str, t: int, **detail) -> Optional[dict]:
        """Snapshot the ring as a post-mortem document.

        Returns the document (also retained in ``postmortems``, first
        :data:`MAX_POSTMORTEMS` kept), or None while disabled.
        """
        tel = self.telemetry
        if not tel.enabled:
            return None
        self.dumps += 1
        doc = {
            "schema": FLIGHT_SCHEMA,
            "version": FLIGHT_SCHEMA_VERSION,
            "node": tel.source,
            "reason": reason,
            "sim_time_ps": t,
            "recorded": self.recorded,
            "aged_out": self.aged_out,
            "events": [dict(e) for e in self.events],
        }
        if detail:
            doc["detail"] = detail
        if len(self.postmortems) < MAX_POSTMORTEMS:
            self.postmortems.append(doc)
        return doc

    def snapshot(self) -> dict:
        """The summary block for the node's metrics sidecar."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "aged_out": self.aged_out,
            "dumps": self.dumps,
            "postmortems_retained": len(self.postmortems),
        }
