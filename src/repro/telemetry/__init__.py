"""End-to-end telemetry for the reproduction: metrics, spans, exports.

The paper argues entirely through measurement — cycle-level breakdowns
of where receive-path time goes.  This package is the measurement layer
for our growing system: a per-node :class:`Telemetry` hub combining

* a **metrics registry** (counters / gauges / fixed-bucket histograms),
* **packet-lifecycle spans** (per-message stage timelines from NIC rx
  through demux, handlers, copies and replies),
* **exporters** (JSON snapshot, Chrome ``trace_event``, text tables).

Telemetry is off by default and free when off.  Turn it on for a whole
run with::

    from repro import telemetry
    with telemetry.session() as sess:
        run_workload()                  # builds nodes as usual
    doc = sess.export_metrics()         # every node born in the session

or per node with ``node.telemetry.enable()``.
"""

from __future__ import annotations

import contextlib
from typing import Optional

from .export import (
    CHROME_SCHEMA,
    SCHEMA,
    SCHEMA_VERSION,
    format_table,
    merge_snapshots,
    node_snapshot,
    to_chrome_trace,
    write_json,
)
from .flightrec import FLIGHT_SCHEMA, FLIGHT_SCHEMA_VERSION, FlightRecorder
from .hub import Telemetry
from .metrics import (
    BYTE_BUCKETS,
    CYCLE_BUCKETS,
    LOG2_US_BUCKETS,
    US_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    hist_quantile,
)
from .slo import FlowStats, SloRule, SloTracker, flow_label
from .spans import MAX_RETAINED, STAGES, Span, SpanTracker, span_of
from .tracecontext import TRACE_KEY, adopt_rx_context, attach_tx_context

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "SpanTracker",
    "span_of",
    "STAGES",
    "SCHEMA",
    "SCHEMA_VERSION",
    "CHROME_SCHEMA",
    "FLIGHT_SCHEMA",
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "SloRule",
    "SloTracker",
    "FlowStats",
    "flow_label",
    "TRACE_KEY",
    "attach_tx_context",
    "adopt_rx_context",
    "US_BUCKETS",
    "CYCLE_BUCKETS",
    "BYTE_BUCKETS",
    "LOG2_US_BUCKETS",
    "hist_quantile",
    "MAX_RETAINED",
    "node_snapshot",
    "merge_snapshots",
    "to_chrome_trace",
    "format_table",
    "write_json",
    "configure",
    "session",
    "Session",
]

# -- run-wide configuration -------------------------------------------------
#
# Nodes are created deep inside workload functions, so benchmarks cannot
# hand a Telemetry object down by argument.  Instead the module keeps a
# default-enabled flag plus an optional active Session that collects
# every hub created while it is open.

_DEFAULT_ENABLED = False
_ACTIVE_SESSION: Optional["Session"] = None


def _default_enabled() -> bool:
    return _DEFAULT_ENABLED


def configure(enabled: bool) -> None:
    """Set whether newly created Telemetry hubs start enabled."""
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = enabled


def _register(tel: Telemetry) -> None:
    if _ACTIVE_SESSION is not None:
        _ACTIVE_SESSION._telemetries.append(tel)


class Session:
    """Collects every Telemetry hub created while the session is open.

    References are strong: a hub created inside the session stays
    exportable after the workload that built it returns, regardless of
    garbage-collector timing (exports must be byte-stable, and hubs
    are only held for the session's bounded lifetime).
    """

    def __init__(self):
        self._telemetries: list[Telemetry] = []

    @property
    def telemetries(self) -> list[Telemetry]:
        return list(self._telemetries)

    def snapshots(self, include_span_events: bool = True) -> list[dict]:
        return [t.snapshot(include_span_events=include_span_events)
                for t in self.telemetries]

    def export_metrics(self, include_span_events: bool = True) -> dict:
        return merge_snapshots(self.snapshots(include_span_events))

    def export_chrome(self) -> dict:
        return to_chrome_trace(self.telemetries)

    def export_postmortems(self) -> list[dict]:
        """Every flight-recorder post-mortem dumped during the session,
        in node order (empty if nothing failed)."""
        out: list[dict] = []
        for tel in self.telemetries:
            if tel._flight is not None:
                out.extend(tel._flight.postmortems)
        return out


@contextlib.contextmanager
def session(enabled: bool = True):
    """Scope within which new nodes get ``enabled`` telemetry, collected.

    Nested sessions stack; the previous default/collector are restored
    on exit.  Pass ``enabled=False`` for a no-op session (the workload
    runs exactly as without telemetry — handy for CLI flags).
    """
    global _DEFAULT_ENABLED, _ACTIVE_SESSION
    prev_enabled, prev_session = _DEFAULT_ENABLED, _ACTIVE_SESSION
    sess = Session()
    _DEFAULT_ENABLED = enabled
    _ACTIVE_SESSION = sess if enabled else prev_session
    try:
        yield sess
    finally:
        _DEFAULT_ENABLED = prev_enabled
        _ACTIVE_SESSION = prev_session
