"""The metrics registry: counters, gauges and fixed-bucket histograms.

Stdlib-only, deterministic, and near-zero cost when disabled: every
instrument shares its registry's ``enabled`` flag, so a disabled
``inc()`` is one attribute load and one branch.  Instruments are
identified by ``(name, labels)`` — repeated lookups return the same
object, so hot paths can (and should) cache the instrument once at
setup time and skip the dictionary lookup entirely.

Snapshots are plain JSON-serializable dicts with deterministic ordering
(sorted by name, then label tuple): two identical simulation runs
produce byte-identical snapshots.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "US_BUCKETS",
    "CYCLE_BUCKETS",
    "BYTE_BUCKETS",
    "LOG2_US_BUCKETS",
    "hist_quantile",
]

#: default buckets for microsecond latencies (upper bounds; +inf implied)
US_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

#: default buckets for per-invocation CPU cycle counts
CYCLE_BUCKETS: tuple[float, ...] = (
    25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000,
)

#: default buckets for byte counts (message/copy sizes)
BYTE_BUCKETS: tuple[float, ...] = (
    16, 64, 256, 1024, 1500, 4096, 8192, 16384, 65536,
)

#: deterministic log2 buckets for per-flow latencies (1us .. ~1s); the
#: fixed geometric ladder makes p50/p99/p999 derivable from any
#: snapshot with bounded relative error, independent of the workload
LOG2_US_BUCKETS: tuple[float, ...] = tuple(float(1 << i) for i in range(21))


def hist_quantile(data: dict, q: float) -> float:
    """Estimate the ``q``-quantile from a histogram snapshot dict.

    Works on the exported shape (``buckets`` ends with ``+inf``): the
    answer is the upper bound of the bucket where the cumulative count
    crosses ``q * count`` (the recorded ``max`` for the overflow
    bucket), so it is an upper-bound estimate with one-bucket
    resolution.  Returns 0.0 for an empty histogram.
    """
    total = data["count"]
    if not total:
        return 0.0
    need = q * total
    cum = 0
    for bound, n in zip(data["buckets"], data["counts"]):
        cum += n
        if cum >= need and n:
            return data["max"] if bound == float("inf") else bound
    return data["max"]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class _Instrument:
    __slots__ = ("registry", "name", "labels")

    kind = "instrument"

    def __init__(self, registry: "MetricsRegistry", name: str, labels: dict):
        self.registry = registry
        self.name = name
        self.labels = labels

    def _data(self) -> dict:
        raise NotImplementedError

    def snapshot(self) -> dict:
        out = {"name": self.name, "labels": dict(self.labels)}
        out.update(self._data())
        return out


class Counter(_Instrument):
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self, registry, name, labels):
        super().__init__(registry, name, labels)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if self.registry.enabled:
            self.value += n

    def _data(self) -> dict:
        return {"value": self.value}


class Gauge(_Instrument):
    """A value that can go up and down (last-write-wins)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self, registry, name, labels):
        super().__init__(registry, name, labels)
        self.value = 0

    def set(self, v) -> None:
        if self.registry.enabled:
            self.value = v

    def add(self, n=1) -> None:
        if self.registry.enabled:
            self.value += n

    def _data(self) -> dict:
        return {"value": self.value}


class Histogram(_Instrument):
    """A fixed-bucket histogram (cumulative-free, one count per bucket).

    ``buckets`` are upper bounds; observations beyond the last bound
    land in the implicit overflow bucket.  ``sum``/``count``/``max``
    ride along so means fall out without re-deriving.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "max")

    kind = "histogram"

    def __init__(self, registry, name, labels,
                 buckets: Sequence[float] = US_BUCKETS):
        super().__init__(registry, name, labels)
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0
        self.count = 0
        self.max = 0

    def observe(self, v) -> None:
        if not self.registry.enabled:
            return
        # bisect_left finds the first bound >= v: same bucket the old
        # linear scan picked, in O(log n); past-the-end is the overflow
        self.counts[bisect_left(self.buckets, v)] += 1
        self.sum += v
        self.count += 1
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (see hist_quantile)."""
        return hist_quantile(self._data(), q)

    def _data(self) -> dict:
        # the overflow bucket is explicit: the exported bounds end with
        # +inf and len(buckets) == len(counts), so consumers never have
        # to special-case a trailing implicit bucket
        return {
            "buckets": list(self.buckets) + [float("inf")],
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "max": self.max,
        }


class MetricsRegistry:
    """Per-node instrument store.

    The ``enabled`` flag is shared by reference with every instrument;
    flipping it turns the whole registry on or off without invalidating
    instruments call sites may have cached.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[tuple, _Instrument] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (cls.kind, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(self, name, labels, **kwargs)
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        if buckets is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, buckets=buckets)

    def snapshot(self) -> dict:
        """Deterministic dump: kind -> sorted list of instrument dicts."""
        out: dict[str, list] = {"counters": [], "gauges": [], "histograms": []}
        plural = {"counter": "counters", "gauge": "gauges",
                  "histogram": "histograms"}
        for key in sorted(self._instruments):
            inst = self._instruments[key]
            out[plural[inst.kind]].append(inst.snapshot())
        return out

    def value(self, name: str, **labels):
        """Convenience lookup for tests: the instrument's current value."""
        for kind in ("counter", "gauge"):
            inst = self._instruments.get((kind, name, _label_key(labels)))
            if inst is not None:
                return inst.value
        inst = self._instruments.get(("histogram", name, _label_key(labels)))
        if inst is not None:
            return inst
        raise KeyError(f"no instrument {name!r} with labels {labels!r}")
