"""Packet-lifecycle spans.

Every frame a NIC DMAs into memory gets a :class:`Span` (stashed on the
receive descriptor's ``meta``) that accumulates ``(stage, time)`` events
as the message moves through the delivery hierarchy:

    nic_rx -> demux -> {kernel_handler | sandbox_entry -> ash_run |
    upcall | copy -> ring_enqueue -> app_consume} -> nic_tx

Stage names are not a closed set — protocol libraries add their own
(``udp_deliver``, ``tcp_segment``) — but the canonical receive-path
stages are listed in :data:`STAGES` for exporters and tests.

When a span finishes, the tracker feeds the deltas between consecutive
events into per-stage latency histograms, so "where does receive-path
time go" falls out of any telemetry-enabled run without bespoke timing
code (the measurement the paper's Tables I-VI were hand-built to take).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from .metrics import US_BUCKETS

if TYPE_CHECKING:  # pragma: no cover
    from .hub import Telemetry

__all__ = ["STAGES", "Span", "SpanTracker", "span_of"]

#: canonical receive-path stages, in pipeline order
STAGES = (
    "nic_rx",          #: frame DMA'd, descriptor handed to the kernel
    "demux",           #: DPF filter / VCI lookup decided the endpoint
    "kernel_handler",  #: a hard-wired in-kernel handler ran
    "sandbox_entry",   #: ASH context installed, abort timer armed
    "ash_run",         #: the ASH finished (cycles charged, sends done)
    "upcall",          #: dispatched into the user-level handler
    "copy",            #: a data copy (device-ring copy-out, app copy)
    "ring_enqueue",    #: notification appended to the endpoint ring
    "app_consume",     #: the application returned the buffer
    "nic_tx",          #: a reply left through the NIC
)

#: spans retained in full after finishing; beyond this only counts grow
MAX_RETAINED = 20_000


class Span:
    """One message's trip through the node."""

    __slots__ = ("span_id", "name", "start", "events", "outcome",
                 "trace_id", "trace_src", "emits")

    def __init__(self, span_id: int, name: str, start: int):
        self.span_id = span_id
        self.name = name
        self.start = start
        self.events: list[tuple[str, int]] = []
        self.outcome: Optional[str] = None
        #: trace context adopted from the incoming frame (cross-node
        #: stitching: the sender minted this id at transmit time)
        self.trace_id: Optional[int] = None
        self.trace_src: Optional[str] = None
        #: trace ids of frames transmitted while this span was the
        #: node's active delivery, with their tx times — the causal
        #: request -> reply edges
        self.emits: list[tuple[int, int]] = []

    @property
    def finished(self) -> bool:
        return self.outcome is not None

    def stage(self, stage: str, t: int) -> None:
        """Record a stage event at simulation time ``t`` (ticks)."""
        if self.outcome is None:
            self.events.append((stage, t))

    def stage_names(self) -> list[str]:
        return [s for s, _t in self.events]

    def duration(self) -> int:
        if not self.events:
            return 0
        return self.events[-1][1] - self.start

    def snapshot(self) -> dict:
        out = {
            "id": self.span_id,
            "name": self.name,
            "start_ps": self.start,
            "outcome": self.outcome,
            "events": [[s, t] for s, t in self.events],
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["trace_src"] = self.trace_src
        if self.emits:
            out["emits"] = [[tid, t] for tid, t in self.emits]
        return out


def span_of(desc) -> Optional[Span]:
    """The span riding on a receive descriptor, if telemetry started one."""
    return desc.meta.get("span")


class SpanTracker:
    """Creates, finishes and aggregates spans for one node."""

    def __init__(self, telemetry: "Telemetry"):
        self.telemetry = telemetry
        self.spans: list[Span] = []
        self.dropped = 0
        self.finished = 0
        self._next_id = 1
        #: the span of the message this node is currently delivering
        #: (set by the kernel around _deliver and by protocol libraries
        #: around segment processing) so transmit paths can attribute
        #: outgoing trace ids to their causal parent
        self.active: Optional[Span] = None
        #: flow starts with no active span (a fresh app-initiated send):
        #: (trace_id, tx_time) pairs, rendered on the node's tid 0
        self.tx_flows: list[tuple[int, int]] = []

    def begin(self, name: str, t: int) -> Span:
        span = Span(self._next_id, name, t)
        self._next_id += 1
        if len(self.spans) < MAX_RETAINED:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def note_tx_flow(self, trace_id: int, t: int) -> None:
        """Record one outgoing message's flow start on this node.

        Attributed to the active span when there is one (the message is
        causally a reply); otherwise to the node itself (tid 0).
        """
        span = self.active
        if span is not None and not span.finished:
            span.emits.append((trace_id, t))
        elif len(self.tx_flows) < MAX_RETAINED:
            self.tx_flows.append((trace_id, t))
        else:
            self.dropped += 1

    def finish(self, span: Span, t: int, outcome: str = "done") -> None:
        """Close the span; safe to call twice (the first outcome wins)."""
        if span.outcome is not None:
            return
        span.outcome = outcome
        self.finished += 1
        tel = self.telemetry
        if not tel.enabled:
            return
        reg = tel.registry
        reg.counter("span.finished", outcome=outcome).inc()
        reg.histogram("span.duration_us").observe(span.duration() / 1e6)
        prev = span.start
        for stage, at in span.events:
            reg.histogram("stage.latency_us", buckets=US_BUCKETS,
                          stage=stage).observe((at - prev) / 1e6)
            prev = at
        tel.flight.record("span", t, name=span.name, outcome=outcome,
                          trace=span.trace_id)

    def open_spans(self) -> list[Span]:
        return [s for s in self.spans if not s.finished]

    def snapshot(self, include_events: bool = True) -> dict:
        out = {
            "created": self._next_id - 1,
            "finished": self.finished,
            "open": sum(1 for s in self.spans if not s.finished),
            "dropped": self.dropped,
        }
        if include_events:
            out["records"] = [s.snapshot() for s in self.spans]
        return out
