"""Telemetry exporters: JSON snapshots, Chrome trace_event, text tables.

Three consumers, one schema:

* **JSON snapshot** (``SCHEMA``/``SCHEMA_VERSION``) — the metrics
  sidecar benchmarks write next to their results JSON.  Validated by
  ``benchmarks/check_metrics_schema.py`` so exporters cannot drift
  silently.
* **Chrome trace_event** — load the file in ``chrome://tracing`` (or
  Perfetto) and see every packet's lifecycle as nested slices per node;
  trace records (if the tracer was on) appear as instant events.
* **text table** — a quick human-readable dump for terminals and tests.

Everything here is pure data-shuffling over already-deterministic
snapshots: identical runs export identical bytes.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .hub import Telemetry

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "CHROME_SCHEMA",
    "node_snapshot",
    "merge_snapshots",
    "to_chrome_trace",
    "format_table",
    "write_json",
]

SCHEMA = "repro-telemetry"
SCHEMA_VERSION = 1
CHROME_SCHEMA = "repro-telemetry-chrome"


def node_snapshot(tel: "Telemetry", include_span_events: bool = True) -> dict:
    """One node's full telemetry state as a JSON-serializable dict."""
    out = {
        "schema": SCHEMA,
        "version": SCHEMA_VERSION,
        "source": tel.source,
        "sim_time_ps": tel.engine.now,
        "enabled": tel.enabled,
        "metrics": tel.registry.snapshot(),
        "spans": tel.spans.snapshot(include_events=include_span_events),
    }
    # optional blocks: only nodes that touched the subsystem carry them
    if tel._slo is not None:
        out["slo"] = tel._slo.snapshot()
    if tel._flight is not None:
        out["flight"] = tel._flight.snapshot()
    return out


def merge_snapshots(snaps: Iterable[dict]) -> dict:
    """The multi-node envelope benchmarks write as their sidecar.

    Refuses to merge snapshots from different schema versions: a silent
    mixed-version envelope would validate as whichever version the
    outer document claims while half its nodes mean something else.
    """
    nodes = list(snaps)
    for i, node in enumerate(nodes):
        schema = node.get("schema")
        version = node.get("version")
        if schema != SCHEMA or version != SCHEMA_VERSION:
            raise ValueError(
                f"schema-version skew: node[{i}] "
                f"({node.get('source', '?')!r}) carries "
                f"{schema!r} v{version!r}, this exporter writes "
                f"{SCHEMA!r} v{SCHEMA_VERSION!r}"
            )
    return {
        "schema": SCHEMA,
        "version": SCHEMA_VERSION,
        "nodes": nodes,
    }


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def to_chrome_trace(tels: Iterable["Telemetry"]) -> dict:
    """Export span stages (and trace records) as Chrome trace events.

    Each node becomes a process; each span becomes a thread within it,
    its stages rendered as complete ("ph": "X") slices spanning the time
    since the previous stage.  Timestamps are microseconds, as the
    format requires.

    Trace context stitches the nodes together: every transmitted
    message emits a flow start (``ph:"s"``) on its sender — bound to
    the delivering span when the message was a reply, to the node
    otherwise — and a flow finish (``ph:"f"``) on the receiver span
    that adopted the same trace id, so chrome://tracing draws the
    cross-node causal arrows.
    """
    events: list[dict] = []
    for pid, tel in enumerate(tels, start=1):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": tel.source},
        })
        for span in tel.spans.spans:
            prev = span.start
            for stage, at in span.events:
                events.append({
                    "name": stage,
                    "cat": "packet",
                    "ph": "X",
                    "pid": pid,
                    "tid": span.span_id,
                    "ts": prev / 1e6,        # ps -> us
                    "dur": (at - prev) / 1e6,
                    "args": {"span": span.name,
                             "outcome": span.outcome or "open"},
                })
                prev = at
            if span.trace_id is not None:
                events.append({
                    "name": "msg",
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "id": span.trace_id,
                    "pid": pid,
                    "tid": span.span_id,
                    "ts": span.start / 1e6,
                    "args": {"from": span.trace_src},
                })
            for trace_id, at in span.emits:
                events.append({
                    "name": "msg",
                    "cat": "flow",
                    "ph": "s",
                    "id": trace_id,
                    "pid": pid,
                    "tid": span.span_id,
                    "ts": at / 1e6,
                })
        for trace_id, at in tel.spans.tx_flows:
            events.append({
                "name": "msg",
                "cat": "flow",
                "ph": "s",
                "id": trace_id,
                "pid": pid,
                "tid": 0,
                "ts": at / 1e6,
            })
        tracer = tel.tracer
        if tracer is not None:
            for rec in tracer.records:
                events.append({
                    "name": rec.tag,
                    "cat": "trace",
                    "ph": "i",
                    "s": "p",
                    "pid": pid,
                    "tid": 0,
                    "ts": rec.time / 1e6,
                    "args": {"source": rec.source,
                             "payload": repr(rec.payload)},
                })
    return {
        "schema": CHROME_SCHEMA,
        "version": SCHEMA_VERSION,
        "displayTimeUnit": "ms",
        "traceEvents": events,
    }


# ---------------------------------------------------------------------------
# human-readable dump
# ---------------------------------------------------------------------------

def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def format_table(snap: dict) -> str:
    """Render one node snapshot as aligned text."""
    lines = [f"telemetry[{snap['source']}] @ {snap['sim_time_ps'] / 1e6:.3f}us"]
    metrics = snap["metrics"]
    rows: list[tuple[str, str]] = []
    for c in metrics["counters"]:
        rows.append((c["name"] + _label_str(c["labels"]), str(c["value"])))
    for g in metrics["gauges"]:
        rows.append((g["name"] + _label_str(g["labels"]), str(g["value"])))
    for h in metrics["histograms"]:
        mean = h["sum"] / h["count"] if h["count"] else 0.0
        rows.append((
            h["name"] + _label_str(h["labels"]),
            f"n={h['count']} mean={mean:.3f} max={h['max']:.3f}",
        ))
    width = max((len(name) for name, _ in rows), default=0)
    for name, value in rows:
        lines.append(f"  {name:<{width}}  {value}")
    spans = snap["spans"]
    lines.append(
        f"  spans: created={spans['created']} finished={spans['finished']} "
        f"open={spans['open']} dropped={spans['dropped']}"
    )
    return "\n".join(lines)


def write_json(path: str, doc: dict) -> str:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
