"""Time units for the simulation.

The global simulation clock counts integer **picoseconds** so that every
quantity we care about is exact:

* one CPU cycle of the modelled 40 MHz DECstation 5000/240 is exactly
  25 000 ps,
* wire times for the 10 Mb/s Ethernet and the 155 Mb/s AN2 round to the
  picosecond with negligible error.

Keeping the clock integral makes the discrete-event engine fully
deterministic (no float-comparison ties), which in turn is what lets the
benchmark harness reproduce the paper's tables bit-for-bit across runs.
"""

from __future__ import annotations

#: Picoseconds per CPU cycle of the modelled 40 MHz CPU.
CYCLE_PS: int = 25_000

#: Picoseconds per microsecond.
US_PS: int = 1_000_000

#: Picoseconds per nanosecond.
NS_PS: int = 1_000


def cycles(n: float) -> int:
    """Convert a cycle count to integer simulation ticks (picoseconds)."""
    return round(n * CYCLE_PS)


def us(x: float) -> int:
    """Convert microseconds to integer simulation ticks."""
    return round(x * US_PS)


def ns(x: float) -> int:
    """Convert nanoseconds to integer simulation ticks."""
    return round(x * NS_PS)


def to_us(ticks: int) -> float:
    """Convert simulation ticks to microseconds (float, for reporting)."""
    return ticks / US_PS


def to_cycles(ticks: int) -> float:
    """Convert simulation ticks to CPU cycles (float, for reporting)."""
    return ticks / CYCLE_PS


def seconds(x: float) -> int:
    """Convert seconds to integer simulation ticks."""
    return round(x * 1_000_000 * US_PS)


def to_seconds(ticks: int) -> float:
    """Convert simulation ticks to seconds (float, for reporting)."""
    return ticks / (1_000_000 * US_PS)
