"""Deterministic fault-injection plane.

The paper's premise is that ASHs run *in the kernel's interrupt path*,
so the system has to stay safe and live when messages are lost, mangled
or duplicated, when the NIC runs out of receive buffers, and when a
handler is involuntarily aborted mid-run.  The :class:`FaultPlane`
makes all of those conditions injectable at well-defined seams:

* **link impairments** (:meth:`FaultPlane.impair_link`) — drop,
  bit-corrupt, duplicate, reorder and delay-jitter frames on a
  :class:`~repro.hw.link.Link`;
* **NIC stress** (:meth:`FaultPlane.stress_nic`) — forced rx-ring
  exhaustion and truncated DMA on a :class:`~repro.hw.nic.base.Nic`;
* **kernel-path faults** (:meth:`FaultPlane.abort_ash`) — forced
  involuntary ASH aborts mid-handler, via a deliberately tiny cycle
  budget (:func:`repro.sandbox.budget.forced_abort_budget`);
* **node crash/reboot** (:meth:`FaultPlane.crash_node`) — a scripted
  kernel crash mid-flow that tears down every piece of kernel-volatile
  state (DPF filters, installed ASHs, upcall bindings, rx rings) while
  application memory — including the TCP ``SharedTcb`` region —
  survives; the reboot path rebuilds the kernel from boot records and
  the surviving application state (the exokernel bet);
* **memory pressure** (:meth:`FaultPlane.pressure_memory`) — injected
  allocation failure on ``mem.alloc`` and the allocation-like fast-path
  sites (rx-ring refill, ASH install, pktbuf wrappers), each of which
  must degrade gracefully, counted under ``mem.alloc_failures{site}``;
* **CPU contention** (:meth:`FaultPlane.contend_cpu`) — seeded
  cycle-stealing bursts that stretch wall-clock time without advancing
  the victim's work, interacting with the sandbox abort budget and the
  receive-livelock admission throttle.

Every decision is drawn from a per-seam :class:`random.Random` stream
seeded from ``(plane seed, seam name)`` and consumed in seam-call
order.  Because both simulation substrates produce bit-identical event
orderings, an identical seeded fault schedule yields **bit-identical
outcomes** (delivered bytes, retransmit counts, the fault ledger) on
``fast`` and ``legacy`` — the bar ``tests/test_faults.py`` pins.

Activation windows (``start_us``/``stop_us``) are evaluated against the
engine's deterministic clock, so scenarios are scriptable as plain data
(:meth:`FaultPlane.apply_scenario`)::

    plane = tb.attach_fault_plane(seed=42)
    plane.apply_scenario([
        {"site": "link", "target": tb.link, "drop": 0.05, "skip_first": 3},
        {"site": "nic", "target": tb.server_nic, "exhaust": 0.5,
         "start_us": 2_000.0, "stop_us": 4_000.0},
        {"site": "ash", "target": tb.server_kernel, "every": 2},
    ])

The plane keeps a deterministic **ledger** of everything it injected
(:meth:`FaultPlane.ledger`) and mirrors it into ``faults.*`` telemetry.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from ..errors import SimError
from .units import us

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.cpu import Cpu
    from ..hw.link import Frame, Link
    from ..hw.nic.base import Nic
    from ..hw.node import Node
    from ..kernel.kernel import Kernel

__all__ = [
    "FaultPlane",
    "LinkImpairment",
    "NicStress",
    "AshAbortInjector",
    "NodeCrash",
    "MemPressure",
    "CpuContention",
    "TenantFlood",
    "TenantLeak",
    "TenantCycleHog",
    "TenantAbortLoop",
    "TenantScript",
]

#: every fault kind the plane can record in its ledger
FAULT_KINDS = (
    "drop", "corrupt", "duplicate", "reorder", "delay",
    "nic_exhaust", "nic_truncate", "ash_abort",
    "node_crash", "node_reboot", "mem_pressure", "cpu_contention",
    "tenant_flood", "tenant_leak", "tenant_hog", "tenant_abort",
    "tenant_crashloop", "tenant_crash",
)


class _Injector:
    """Shared state for one installed injector: window + skip gates."""

    def __init__(self, plane: "FaultPlane", site: str, skip_first: int,
                 start_us: Optional[float], stop_us: Optional[float]):
        self.plane = plane
        self.site = site
        self.rng = plane._rng_for(site)
        self.skip_first = skip_first
        self.start = None if start_us is None else us(start_us)
        self.stop = None if stop_us is None else us(stop_us)
        self.seen = 0        #: seam invocations observed (incl. skipped)
        self.enabled = True

    def _gate(self) -> bool:
        """One seam invocation: True when injection may fire now."""
        self.seen += 1
        if not self.enabled or self.seen <= self.skip_first:
            return False
        now = self.plane.engine.now
        if self.start is not None and now < self.start:
            return False
        if self.stop is not None and now >= self.stop:
            return False
        return True


class LinkImpairment(_Injector):
    """Wire-level impairments for one :class:`~repro.hw.link.Link`.

    Rates are independent per-frame probabilities, drawn in a fixed
    order (drop, corrupt, duplicate, reorder, jitter) so each knob's
    pattern is a deterministic function of the seed and the frame
    sequence.  A dropped frame consumes no further draws.
    """

    def __init__(self, plane: "FaultPlane", link: "Link",
                 drop: float = 0.0, corrupt: float = 0.0,
                 duplicate: float = 0.0, reorder: float = 0.0,
                 delay_jitter_us: float = 0.0,
                 reorder_delay_us: float = 150.0,
                 duplicate_gap_us: float = 5.0,
                 ends: tuple[int, ...] = (0, 1),
                 skip_first: int = 0,
                 start_us: Optional[float] = None,
                 stop_us: Optional[float] = None):
        super().__init__(plane, f"link:{link.name}", skip_first,
                         start_us, stop_us)
        self.link = link
        self.drop = drop
        self.corrupt = corrupt
        self.duplicate = duplicate
        self.reorder = reorder
        self.jitter_ticks = us(delay_jitter_us)
        self.reorder_ticks = us(reorder_delay_us)
        self.dup_gap_ticks = us(duplicate_gap_us)
        self.ends = tuple(ends)

    def on_send(self, from_end: int, frame: "Frame",
                arrival: int) -> list[tuple[int, "Frame"]]:
        """Deliveries for one transmitted frame: ``[(tick, frame), ...]``
        (empty = the wire ate it)."""
        if from_end not in self.ends or not self._gate():
            return [(arrival, frame)]
        rng = self.rng
        plane = self.plane
        site = self.site
        if self.drop and rng.random() < self.drop:
            plane.record("drop", site)
            return []
        if self.corrupt and rng.random() < self.corrupt and len(frame.data):
            frame = self._corrupt(frame, rng)
            plane.record("corrupt", site)
        deliveries = [(arrival, frame)]
        if self.duplicate and rng.random() < self.duplicate:
            deliveries.append((arrival + self.dup_gap_ticks,
                               self._clone(frame)))
            plane.record("duplicate", site)
        if self.reorder and rng.random() < self.reorder:
            # hold the frame long enough for later frames to overtake it
            deliveries = [(when + self.reorder_ticks, f)
                          for when, f in deliveries]
            plane.record("reorder", site)
        if self.jitter_ticks:
            extra = rng.randrange(self.jitter_ticks + 1)
            if extra:
                deliveries = [(when + extra, f) for when, f in deliveries]
                plane.record("delay", site)
        return deliveries

    @staticmethod
    def _clone(frame: "Frame") -> "Frame":
        from ..hw.link import Frame as _Frame

        return _Frame(frame.data, vci=frame.vci, meta=dict(frame.meta))

    @staticmethod
    def _corrupt(frame: "Frame", rng: random.Random) -> "Frame":
        """Flip one random bit of the payload (the link-CRC-escaping
        corruption transport checksums exist to catch)."""
        from ..hw.link import Frame as _Frame

        data = bytearray(frame.data)
        pos = rng.randrange(len(data))
        data[pos] ^= 1 << rng.randrange(8)
        return _Frame(bytes(data), vci=frame.vci, meta=dict(frame.meta))


class NicStress(_Injector):
    """Receive-side NIC stress: forced ring exhaustion, truncated DMA."""

    def __init__(self, plane: "FaultPlane", nic: "Nic",
                 exhaust: float = 0.0, truncate: float = 0.0,
                 truncate_to: int = 12,
                 skip_first: int = 0,
                 start_us: Optional[float] = None,
                 stop_us: Optional[float] = None):
        # NIC names repeat across nodes ("an2" on client and server), so
        # qualify the seam by the owning node — Nic.bind(node) set the
        # backref before any fault can be installed.  (Node-qualified,
        # not install-index-qualified: the seam name must not depend on
        # what *other* injectors a scenario happens to include, or
        # per-seam stream independence breaks.)
        super().__init__(plane, f"nic:{nic.node.name}.{nic.name}",
                         skip_first, start_us, stop_us)
        self.nic = nic
        self.exhaust = exhaust
        self.truncate = truncate
        self.truncate_to = truncate_to

    def on_rx(self, frame: "Frame") -> Optional["Frame"]:
        """Transform an arriving frame; None = drop as if no buffer."""
        if not self._gate():
            return frame
        rng = self.rng
        if self.exhaust and rng.random() < self.exhaust:
            self.plane.record("nic_exhaust", self.site)
            return None
        if self.truncate and rng.random() < self.truncate \
                and len(frame.data) > self.truncate_to:
            self.plane.record("nic_truncate", self.site)
            from ..hw.link import Frame as _Frame

            return _Frame(bytes(frame.data[:self.truncate_to]),
                          vci=frame.vci, meta=dict(frame.meta))
        return frame


class AshAbortInjector(_Injector):
    """Forces involuntary aborts mid-handler.

    Installed on a kernel's :class:`~repro.ash.system.AshSystem`; when
    it fires, the invocation runs under
    :func:`repro.sandbox.budget.forced_abort_budget` — a budget so small
    the handler trips ``BudgetExceeded`` partway through, exactly the
    paper's two-clock-tick timer abort, just early.  The kernel must
    then degrade to the next delivery path (upcall / normal) with zero
    message loss.
    """

    def __init__(self, plane: "FaultPlane", kernel: "Kernel",
                 every: Optional[int] = None, rate: float = 0.0,
                 max_aborts: Optional[int] = None,
                 abort_budget: Optional[int] = None,
                 skip_first: int = 0,
                 start_us: Optional[float] = None,
                 stop_us: Optional[float] = None):
        super().__init__(plane, f"ash:{kernel.node.name}", skip_first,
                         start_us, stop_us)
        from ..sandbox.budget import forced_abort_budget

        self.kernel = kernel
        self.every = every
        self.rate = rate
        self.max_aborts = max_aborts
        self.budget = (abort_budget if abort_budget is not None
                       else forced_abort_budget(kernel.cal))
        self.fired = 0

    def consider(self) -> Optional[int]:
        """Called once per ASH invocation; returns the forced (tiny)
        cycle budget when this invocation must abort, else None."""
        if not self._gate():
            return None
        if self.max_aborts is not None and self.fired >= self.max_aborts:
            return None
        fire = False
        if self.every:
            fire = self.seen % self.every == 0
        if not fire and self.rate:
            fire = self.rng.random() < self.rate
        if not fire:
            return None
        self.fired += 1
        self.plane.record("ash_abort", self.site)
        return self.budget


class NodeCrash(_Injector):
    """A scripted node crash + reboot, driven by its own engine process.

    At ``at_us`` the kernel crashes (:meth:`repro.kernel.kernel.Kernel.
    crash`): every piece of kernel-volatile state — DPF filters, the
    downloaded-ASH registry, upcall bindings, VCI bindings, pending rx
    rings — is torn down, while application memory (and with it the TCP
    ``SharedTcb`` region) survives untouched.  After ``outage_us`` of
    dead air (NICs down, arriving frames dropped as ``node_down``) the
    kernel reboots: filters are re-inserted, ASHs re-verified and
    re-downloaded through the sandbox, VCIs rebound, and the transport
    re-synchronizes from the surviving shared state via its ordinary
    retransmission machinery — bounded recovery, not a hang.

    A **reboot storm** is the same script run ``repeat`` times: crash,
    outage, reboot, then ``period_us`` after each crash the next one
    (default 4× the outage, so the node is up ~75% of the storm).  Each
    cycle's crash/reboot instants are kept in ``storms``.
    """

    def __init__(self, plane: "FaultPlane", kernel: "Kernel",
                 at_us: float, outage_us: float = 500.0,
                 repeat: int = 1, period_us: Optional[float] = None):
        super().__init__(plane, f"crash:{kernel.node.name}", 0, None, None)
        if repeat < 1:
            raise SimError(f"NodeCrash repeat must be >= 1: {repeat}")
        self.kernel = kernel
        self.at = us(at_us)
        self.outage = us(outage_us)
        self.repeat = repeat
        self.period = (us(period_us) if period_us is not None
                       else 4 * self.outage)
        if self.repeat > 1 and self.period <= self.outage:
            raise SimError(
                f"NodeCrash period_us must exceed outage_us for a storm "
                f"(period {self.period} <= outage {self.outage})")
        self.crashed_at: Optional[int] = None
        self.rebooted_at: Optional[int] = None
        #: one record per storm cycle: {"crashed_at", "rebooted_at"}
        self.storms: list[dict] = []
        plane.engine.spawn(self._script(), name=self.site)

    def _script(self):
        engine = self.plane.engine
        delay = self.at - engine.now
        if delay > 0:
            yield engine.timeout(delay)
        for cycle in range(self.repeat):
            if not self.enabled or self.kernel.crashed:
                return
            self.kernel.crash()
            crashed_at = engine.now
            if self.crashed_at is None:
                self.crashed_at = crashed_at
            self.plane.record("node_crash", self.site)
            yield engine.timeout(self.outage)
            self.kernel.reboot()
            self.rebooted_at = engine.now
            self.plane.record("node_reboot", self.site)
            self.storms.append({"crashed_at": crashed_at,
                                "rebooted_at": self.rebooted_at})
            if cycle + 1 < self.repeat:
                # next crash lands period after the previous one
                yield engine.timeout(self.period - self.outage)


class MemPressure(_Injector):
    """Injected allocation failure, per allocating call site.

    Installed as ``node.memory.pressure``; every gated site draws from
    its **own** seeded stream (``mem:<node>:<site>``) so sites that only
    exist on one substrate (the ``pktbuf`` wrapper pool is fast-only)
    cannot perturb the failure pattern of substrate-invariant sites.
    For the same reason ``pktbuf`` is *not* in the default site set —
    gate it explicitly when substrate identity is not required.

    Refusals degrade, never crash: the pktbuf pool falls back to the
    legacy bytes path, a refused rx-ring refill is deferred and flushed
    by the next successful one, a refused ASH install falls back to the
    upcall path.  Every refusal is counted under
    ``mem.alloc_failures{site}``.
    """

    DEFAULT_SITES = ("rx_refill", "ash_install", "alloc")

    def __init__(self, plane: "FaultPlane", node: "Node",
                 rate: float = 0.0,
                 rates: Optional[dict] = None,
                 sites: Optional[tuple] = None,
                 max_failures: Optional[int] = None,
                 skip_first: int = 0,
                 start_us: Optional[float] = None,
                 stop_us: Optional[float] = None):
        super().__init__(plane, f"mem:{node.name}", skip_first,
                         start_us, stop_us)
        self.node = node
        chosen = tuple(sites) if sites is not None else self.DEFAULT_SITES
        self.rates: dict[str, float] = {site: rate for site in chosen}
        if rates:
            self.rates.update(rates)
        self.max_failures = max_failures
        self.fired = 0
        self._site_rng: dict[str, random.Random] = {}
        self._site_seen: dict[str, int] = {}

    def should_fail(self, site: str) -> bool:
        """One allocation attempt at ``site``; True = refuse it."""
        rate = self.rates.get(site, 0.0)
        if not rate:
            return False
        seen = self._site_seen.get(site, 0) + 1
        self._site_seen[site] = seen
        if not self.enabled or seen <= self.skip_first:
            return False
        now = self.plane.engine.now
        if self.start is not None and now < self.start:
            return False
        if self.stop is not None and now >= self.stop:
            return False
        if self.max_failures is not None and self.fired >= self.max_failures:
            return False
        rng = self._site_rng.get(site)
        if rng is None:
            rng = self.plane._rng_for(f"{self.site}:{site}")
            self._site_rng[site] = rng
        if rng.random() >= rate:
            return False
        self.fired += 1
        self.plane.record("mem_pressure", f"{self.site}:{site}")
        tel = self.plane.telemetry
        if tel is not None and tel.enabled:
            tel.counter("mem.alloc_failures", site=site,
                        node=self.node.name).inc()
        return True


class CpuContention(_Injector):
    """Seeded cycle-stealing bursts on one CPU.

    Installed as ``cpu.contention``.  Two seams consume the stream in
    seam-call order:

    * :meth:`steal` — once per :meth:`repro.hw.cpu.Cpu.exec` call; a
      firing burst holds the CPU for ``burst_cycles`` of *foreign* work
      before the victim's charge starts, stretching wall-clock without
      advancing the victim (so the livelock admission window fills with
      fewer messages served);
    * :meth:`budget_penalty` — once per timer-budgeted ASH invocation;
      the abort timer is wall-clock, so a burst landing inside the
      handler's window eats its cycle budget and can force an
      involuntary abort (which must then degrade in order, zero-loss).
    """

    def __init__(self, plane: "FaultPlane", node: "Node",
                 rate: float = 0.0, burst_cycles: int = 400,
                 budget_rate: Optional[float] = None,
                 max_bursts: Optional[int] = None,
                 skip_first: int = 0,
                 start_us: Optional[float] = None,
                 stop_us: Optional[float] = None,
                 core: int = 0):
        super().__init__(plane, f"cpu:{node.name}" if core == 0
                         else f"cpu:{node.name}.c{core}", skip_first,
                         start_us, stop_us)
        #: which core the bursts land on (an SMP node contends per-core:
        #: stealing cycles from core 2 never slows work pinned to core 0)
        self.core = core
        self.cpu: "Cpu" = node.cpus[core]
        self.rate = rate
        self.burst_cycles = burst_cycles
        self.budget_rate = rate if budget_rate is None else budget_rate
        self.max_bursts = max_bursts
        self.fired = 0

    def _burst(self, rate: float) -> int:
        if not self._gate():
            return 0
        if self.max_bursts is not None and self.fired >= self.max_bursts:
            return 0
        if not rate or self.rng.random() >= rate:
            return 0
        self.fired += 1
        self.plane.record("cpu_contention", self.site)
        tel = self.plane.telemetry
        if tel is not None and tel.enabled:
            tel.counter("cpu.contention_cycles",
                        cpu=self.cpu.name).inc(self.burst_cycles)
        return self.burst_cycles

    def steal(self) -> int:
        """Cycles of foreign work stealing the CPU from this ``exec``
        call (0 = none this time)."""
        return self._burst(self.rate)

    def budget_penalty(self) -> int:
        """Cycles a contention burst eats out of a wall-clock abort
        budget for the ASH invocation starting now (0 = none)."""
        return self._burst(self.budget_rate)


class TenantFlood(_Injector):
    """A quota-exhaustion flood against one tenant's virtual circuit.

    An engine process blasts oversized frames straight at the NIC (as
    if an external aggressor held the VC), at a fixed cadence.  With a
    :class:`~repro.ash.tenancy.TenantManager` installed, every frame
    larger than the tenant's ``burst_bytes`` is mathematically
    inadmissible and is clipped *pre-DMA* — no buffer, no interrupt, no
    CPU — which is exactly the containment property the multi-tenant
    worlds pin.
    """

    def __init__(self, plane: "FaultPlane", nic: "Nic", vci: int,
                 frame_bytes: int = 20_000, count: int = 50,
                 start_us: float = 0.0, gap_us: float = 50.0):
        super().__init__(plane,
                         f"tenantflood:{nic.node.name}.{nic.name}:vc{vci}",
                         0, None, None)
        if count < 1:
            raise SimError(f"TenantFlood count must be >= 1: {count}")
        if gap_us < 0:
            raise SimError(f"TenantFlood gap_us must be >= 0: {gap_us}")
        self.nic = nic
        self.vci = vci
        self.frame_bytes = frame_bytes
        self.count = count
        self.at = us(start_us)
        self.gap = us(gap_us)
        self.injected = 0
        plane.engine.spawn(self._script(), name=self.site)

    def _script(self):
        from ..hw.link import Frame

        engine = self.plane.engine
        delay = self.at - engine.now
        if delay > 0:
            yield engine.timeout(delay)
        payload = bytes(self.frame_bytes)
        for _ in range(self.count):
            if not self.enabled:
                return
            self.nic._on_wire_frame(Frame(payload, vci=self.vci))
            self.injected += 1
            self.plane.record("tenant_flood", self.site)
            if self.gap:
                yield engine.timeout(self.gap)


class TenantLeak(_Injector):
    """A buffer-leak seam on one tenant's replenish path.

    Installed as the tenant's ``leak_injector``: a firing replenish is
    swallowed (the buffer silently stays on the tenant's held list),
    modelling an application that loses track of its rx buffers.  The
    manager's FIFO held-quota reclaim must keep the ring stocked — in
    the *same* buffer address order a well-behaved tenant would have
    produced — so the leak stays invisible to every other tenant.
    """

    def __init__(self, plane: "FaultPlane", manager, tenant: str,
                 rate: float = 1.0, max_leaks: Optional[int] = None,
                 skip_first: int = 0,
                 start_us: Optional[float] = None,
                 stop_us: Optional[float] = None):
        node = manager.kernel.node.name
        super().__init__(plane, f"tenantleak:{node}:{tenant}",
                         skip_first, start_us, stop_us)
        self.tenant = manager.get(tenant)
        self.rate = rate
        self.max_leaks = max_leaks
        self.fired = 0
        self.tenant.leak_injector = self

    def on_replenish(self) -> bool:
        """One replenish by the tenant; True = leak (swallow) it."""
        if not self._gate():
            return False
        if self.max_leaks is not None and self.fired >= self.max_leaks:
            return False
        if self.rate < 1.0 and self.rng.random() >= self.rate:
            return False
        self.fired += 1
        self.plane.record("tenant_leak", self.site)
        return True


class TenantCycleHog(_Injector):
    """A cycle-hog seam on one tenant's handler accounting.

    Installed as the tenant's ``hog_injector``: every charged handler
    invocation is inflated by ``factor``, as if the tenant's handler
    burned far more than it admitted to.  The per-round cycle quota
    must then throttle *this* tenant's handler (messages degrade to its
    normal path) without touching anyone else's.
    """

    def __init__(self, plane: "FaultPlane", manager, tenant: str,
                 factor: int = 16, skip_first: int = 0,
                 start_us: Optional[float] = None,
                 stop_us: Optional[float] = None):
        node = manager.kernel.node.name
        super().__init__(plane, f"tenanthog:{node}:{tenant}",
                         skip_first, start_us, stop_us)
        if factor < 1:
            raise SimError(f"TenantCycleHog factor must be >= 1: {factor}")
        self.tenant = manager.get(tenant)
        self.factor = factor
        self.tenant.hog_injector = self

    def inflate(self, cycles: int) -> int:
        """Accounting-side inflation of one invocation's cycle charge."""
        if not self._gate():
            return cycles
        self.plane.record("tenant_hog", self.site)
        return cycles * self.factor


class TenantAbortLoop(_Injector):
    """A crash-looping handler: tenant-scoped forced involuntary aborts.

    Installed as the tenant's ``abort_injector`` — the per-tenant
    sibling of :class:`AshAbortInjector`.  Each firing invocation runs
    under a forced (tiny) cycle budget and aborts mid-handler; after
    :data:`repro.ash.tenancy.ABORT_BREAKER_LIMIT` consecutive aborts
    the manager cuts the tenant's ASH binding (the crash-loop breaker),
    and its traffic continues on the normal path.
    """

    def __init__(self, plane: "FaultPlane", manager, tenant: str,
                 every: int = 1, max_aborts: Optional[int] = None,
                 abort_budget: Optional[int] = None,
                 skip_first: int = 0,
                 start_us: Optional[float] = None,
                 stop_us: Optional[float] = None):
        node = manager.kernel.node.name
        super().__init__(plane, f"tenantabort:{node}:{tenant}",
                         skip_first, start_us, stop_us)
        from ..sandbox.budget import forced_abort_budget

        if every < 1:
            raise SimError(f"TenantAbortLoop every must be >= 1: {every}")
        self.tenant = manager.get(tenant)
        self.every = every
        self.max_aborts = max_aborts
        self.budget = (abort_budget if abort_budget is not None
                       else forced_abort_budget(manager.cal))
        self.fired = 0
        self.tenant.abort_injector = self

    def consider(self) -> Optional[int]:
        """Called once per invocation on the tenant's endpoints; returns
        the forced budget when this invocation must abort, else None."""
        if not self._gate():
            return None
        if self.max_aborts is not None and self.fired >= self.max_aborts:
            return None
        if self.seen % self.every != 0:
            return None
        self.fired += 1
        self.plane.record("tenant_abort", self.site)
        return self.budget


class TenantScript(_Injector):
    """One scripted tenant-lifecycle abuse at a fixed instant.

    ``action``:

    * ``"crash"`` — the tenant's application dies
      (:meth:`~repro.ash.tenancy.TenantManager.crash_tenant`): its ASHs
      and their boot records are removed, its frames drop pre-DMA;
    * ``"install_hog"`` — ``attempts`` downloads of ``program`` (a
      loop-free handler whose static bound exceeds the tenant's cycle
      quota), each refused at the tenant admission layer;
    * ``"install_crashloop"`` — ``attempts`` downloads of ``program``
      (an unverifiable handler); the tenant is quarantined after
      :data:`repro.ash.tenancy.CRASHLOOP_LIMIT` consecutive failures.

    All three are host-level control-plane actions: they consume no
    simulated time, which is what makes the containment bar (victim
    observables bit-identical to the unperturbed run) provable.
    """

    def __init__(self, plane: "FaultPlane", manager, tenant: str,
                 at_us: float, action: str = "crash",
                 program=None, allowed_regions=None, policy=None,
                 attempts: int = 1):
        node = manager.kernel.node.name
        super().__init__(plane, f"tenant:{node}:{tenant}:{action}",
                         0, None, None)
        if action not in ("crash", "install_hog", "install_crashloop"):
            raise SimError(f"unknown TenantScript action {action!r}")
        if action != "crash" and program is None:
            raise SimError(f"TenantScript {action} needs a program")
        if attempts < 1:
            raise SimError(f"TenantScript attempts must be >= 1: {attempts}")
        self.manager = manager
        self.tenant = tenant
        self.at = us(at_us)
        self.action = action
        self.program = program
        self.allowed_regions = allowed_regions
        self.policy = policy
        self.attempts = attempts
        self.refusals = 0
        plane.engine.spawn(self._script(), name=self.site)

    def _script(self):
        engine = self.plane.engine
        delay = self.at - engine.now
        if delay > 0:
            yield engine.timeout(delay)
        if not self.enabled:
            return
        if self.action == "crash":
            self.manager.crash_tenant(self.tenant)
            self.plane.record("tenant_crash", self.site)
            return
        from ..ash.tenancy import TenantQuotaError
        from ..errors import SandboxViolation

        kind = ("tenant_hog" if self.action == "install_hog"
                else "tenant_crashloop")
        for _ in range(self.attempts):
            try:
                self.manager.download(
                    self.tenant, self.program, self.allowed_regions,
                    policy=self.policy)
            except (TenantQuotaError, SandboxViolation):
                self.refusals += 1
            self.plane.record(kind, self.site)


class FaultPlane:
    """Seeded, scenario-scriptable fault injection for one engine."""

    def __init__(self, engine, seed: int = 0, telemetry=None):
        self.engine = engine
        self.seed = seed
        self.telemetry = telemetry
        self._ledger: dict[str, int] = {}
        self.injectors: list[_Injector] = []

    # -- deterministic randomness ----------------------------------------
    def _rng_for(self, site: str) -> random.Random:
        # string seeding is deterministic across processes (unlike
        # hash()), so the same (seed, site) always yields the same stream
        return random.Random(f"faultplane:{self.seed}:{site}")

    # -- installation -----------------------------------------------------
    def impair_link(self, link: "Link", **knobs) -> LinkImpairment:
        """Install wire impairments on ``link`` (see LinkImpairment)."""
        imp = LinkImpairment(self, link, **knobs)
        link.impairment = imp
        self.injectors.append(imp)
        return imp

    def stress_nic(self, nic: "Nic", **knobs) -> NicStress:
        """Install receive-side stress on ``nic`` (see NicStress)."""
        stress = NicStress(self, nic, **knobs)
        nic.stress = stress
        self.injectors.append(stress)
        return stress

    def abort_ash(self, kernel: "Kernel", **knobs) -> AshAbortInjector:
        """Force involuntary ASH aborts on ``kernel`` (see
        AshAbortInjector)."""
        injector = AshAbortInjector(self, kernel, **knobs)
        kernel.ash_system.fault_injector = injector
        self.injectors.append(injector)
        return injector

    def crash_node(self, kernel: "Kernel", at_us: float,
                   outage_us: float = 500.0, repeat: int = 1,
                   period_us: Optional[float] = None) -> NodeCrash:
        """Script a kernel crash at ``at_us`` and a reboot ``outage_us``
        later; ``repeat``/``period_us`` turn it into a reboot storm
        (see NodeCrash)."""
        crash = NodeCrash(self, kernel, at_us, outage_us,
                          repeat=repeat, period_us=period_us)
        self.injectors.append(crash)
        return crash

    def pressure_memory(self, node: "Node", **knobs) -> MemPressure:
        """Inject allocation failures on ``node``'s memory (see
        MemPressure)."""
        pressure = MemPressure(self, node, **knobs)
        node.memory.pressure = pressure
        self.injectors.append(pressure)
        return pressure

    def contend_cpu(self, node: "Node", **knobs) -> CpuContention:
        """Install cycle-stealing bursts on one of ``node``'s CPUs
        (``core=N`` picks which; see CpuContention)."""
        contention = CpuContention(self, node, **knobs)
        contention.cpu.contention = contention
        self.injectors.append(contention)
        return contention

    def flood_tenant(self, nic: "Nic", vci: int, **knobs) -> TenantFlood:
        """Blast oversized frames at one tenant's VC (see TenantFlood)."""
        flood = TenantFlood(self, nic, vci, **knobs)
        self.injectors.append(flood)
        return flood

    def leak_tenant(self, manager, tenant: str, **knobs) -> TenantLeak:
        """Leak one tenant's rx-buffer replenishes (see TenantLeak)."""
        leak = TenantLeak(self, manager, tenant, **knobs)
        self.injectors.append(leak)
        return leak

    def hog_tenant(self, manager, tenant: str, **knobs) -> TenantCycleHog:
        """Inflate one tenant's handler cycle accounting (see
        TenantCycleHog)."""
        hog = TenantCycleHog(self, manager, tenant, **knobs)
        self.injectors.append(hog)
        return hog

    def abortloop_tenant(self, manager, tenant: str,
                         **knobs) -> TenantAbortLoop:
        """Crash-loop one tenant's handler with forced involuntary
        aborts (see TenantAbortLoop)."""
        loop = TenantAbortLoop(self, manager, tenant, **knobs)
        self.injectors.append(loop)
        return loop

    def script_tenant(self, manager, tenant: str, at_us: float,
                      **knobs) -> TenantScript:
        """Scripted tenant crash or install abuse (see TenantScript)."""
        script = TenantScript(self, manager, tenant, at_us, **knobs)
        self.injectors.append(script)
        return script

    def apply_scenario(self, scenario: list[dict]) -> list[_Injector]:
        """Install a declarative scenario: a list of specs, each with a
        ``site`` ("link" / "nic" / "ash" / "crash" / "mem" / "cpu" /
        "tenant_flood" / "tenant_leak" / "tenant_hog" / "tenant_abort" /
        "tenant_script"), a ``target`` object, and the matching
        injector's keyword knobs."""
        installed = []
        for spec in scenario:
            spec = dict(spec)
            site = spec.pop("site")
            target = spec.pop("target")
            if site == "link":
                installed.append(self.impair_link(target, **spec))
            elif site == "nic":
                installed.append(self.stress_nic(target, **spec))
            elif site == "ash":
                installed.append(self.abort_ash(target, **spec))
            elif site == "crash":
                installed.append(self.crash_node(target, **spec))
            elif site == "mem":
                installed.append(self.pressure_memory(target, **spec))
            elif site == "cpu":
                installed.append(self.contend_cpu(target, **spec))
            elif site == "tenant_flood":
                installed.append(self.flood_tenant(target, **spec))
            elif site == "tenant_leak":
                installed.append(self.leak_tenant(target, **spec))
            elif site == "tenant_hog":
                installed.append(self.hog_tenant(target, **spec))
            elif site == "tenant_abort":
                installed.append(self.abortloop_tenant(target, **spec))
            elif site == "tenant_script":
                installed.append(self.script_tenant(target, **spec))
            else:
                raise SimError(f"unknown fault site {site!r}")
        return installed

    # -- accounting --------------------------------------------------------
    def record(self, kind: str, site: str) -> None:
        self._ledger[kind] = self._ledger.get(kind, 0) + 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("faults.injected", kind=kind, site=site).inc()
            tel.flight.record("fault", self.engine.now, fault=kind, site=site)

    def ledger(self) -> dict[str, int]:
        """Deterministic count of injected faults by kind — part of the
        substrate bit-identity bar."""
        return dict(sorted(self._ledger.items()))

    def total(self, kind: Optional[str] = None) -> int:
        if kind is not None:
            return self._ledger.get(kind, 0)
        return sum(self._ledger.values())

    def publish_telemetry(self, hub=None) -> None:
        """End-of-run export: the ledger as ``faults.ledger`` gauges
        (idempotent sets, safe to call per phase)."""
        tel = hub if hub is not None else self.telemetry
        if tel is None or not tel.enabled:
            return
        for kind, count in self._ledger.items():
            tel.gauge("faults.ledger", kind=kind).set(count)
