"""Deterministic discrete-event simulation substrate."""

from .engine import AllOf, AnyOf, Engine, Event, Interrupt, SimProcess, Timeout
from .queues import Channel, Gate, PriorityLock
from .trace import TraceRecord, Tracer
from . import units

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Interrupt",
    "SimProcess",
    "Timeout",
    "Channel",
    "Gate",
    "PriorityLock",
    "TraceRecord",
    "Tracer",
    "units",
]
