"""Deterministic discrete-event simulation substrate."""

from .engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    SimProcess,
    Timeout,
    SUBSTRATE_ENV,
    active_substrate,
)
from .queues import CalendarQueue, Channel, Gate, HeapEventQueue, PriorityLock, TimerWheel
from .trace import TraceRecord, Tracer
from . import units

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Interrupt",
    "SimProcess",
    "Timeout",
    "SUBSTRATE_ENV",
    "active_substrate",
    "CalendarQueue",
    "Channel",
    "Gate",
    "HeapEventQueue",
    "PriorityLock",
    "TimerWheel",
    "TraceRecord",
    "Tracer",
    "units",
]
