"""Structured event tracing.

Subsystems emit ``(time, source, tag, payload)`` records through a
shared :class:`Tracer`.  Tracing is off by default (zero overhead beyond
a boolean check) and can be scoped to tags, which keeps multi-megabyte
TCP runs debuggable without drowning in events.

Payloads may be **zero-arg callables**: they are only invoked once the
enabled/tag gates have passed, so hot paths can describe rich payloads
(``lambda: {"len": desc.length, ...}``) without paying any string or
dict construction when tracing is off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from .engine import Engine
from .units import to_us

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    time: int
    source: str
    tag: str
    payload: Any

    def __str__(self) -> str:
        return f"[{to_us(self.time):12.3f}us] {self.source:>14s} {self.tag}: {self.payload}"


class Tracer:
    """Collects trace records, optionally filtered by tag."""

    def __init__(self, engine: Engine, enabled: bool = False,
                 tags: Optional[Iterable[str]] = None):
        self.engine = engine
        self.enabled = enabled
        self.tags = set(tags) if tags is not None else None
        self.records: list[TraceRecord] = []

    def emit(self, source: str, tag: str, payload: Any = None) -> None:
        if not self.enabled:
            return
        if self.tags is not None and tag not in self.tags:
            return
        if callable(payload):  # lazy payloads: resolved only when recorded
            payload = payload()
        self.records.append(TraceRecord(self.engine.now, source, tag, payload))

    def clear(self) -> None:
        self.records.clear()

    def with_tag(self, tag: str) -> list[TraceRecord]:
        return [r for r in self.records if r.tag == tag]

    def dump(self) -> str:
        return "\n".join(str(r) for r in self.records)
