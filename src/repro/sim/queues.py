"""Blocking primitives and event-queue structures for the simulator.

Process-facing primitives:

* :class:`Channel` — an unbounded FIFO of messages (NIC notification
  rings, socket receive queues, inter-process mailboxes),
* :class:`PriorityLock` — a mutual-exclusion lock with priorities (the
  CPU: interrupt-level work preempts user-level work at charge-quantum
  boundaries),
* :class:`Gate` — a reusable level-triggered condition (scheduler
  "you are now running" signals),
* :class:`TimerWheel` — a schedule/cancel facade over engine timeouts
  for high-churn users (the TCP retransmit/delack timers).

Engine-facing event queues (see :mod:`repro.sim.engine`):

* :class:`HeapEventQueue` — the legacy single binary heap,
* :class:`CalendarQueue` — a bucketed calendar queue with a heap
  fallback for far-future events.

Both pop entries in exactly the same ``(time, seq)`` order, which is
what lets ``REPRO_SIM_SUBSTRATE`` switch between them without changing
any simulated result.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle: engine imports us
    from .engine import Engine, Event, Timeout

__all__ = [
    "Channel",
    "PriorityLock",
    "Gate",
    "TimerWheel",
    "HeapEventQueue",
    "CalendarQueue",
]


# ---------------------------------------------------------------------------
# event queues
# ---------------------------------------------------------------------------
#
# An *entry* is the mutable list ``[at, seq, fn, args, slot]``.  ``at`` is
# the fire time in ticks, ``seq`` the engine's tie-breaking sequence
# number (unique, so heap comparisons never reach ``fn``), ``fn`` the
# callback (``None`` once cancelled — a tombstone), and ``slot`` the
# calendar-wheel bucket currently holding the entry (``None`` while it
# sits in a heap).  Wheel-resident entries cancel by physical removal;
# heap-resident ones become tombstones that the engine's run loop pops
# and skips.


class HeapEventQueue:
    """The legacy substrate: one binary heap of entries."""

    kind = "heap"

    def __init__(self) -> None:
        self._heap: list[list] = []
        self.tombstones = 0          #: pending cancelled entries
        self.tombstones_popped = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: list) -> None:
        heapq.heappush(self._heap, entry)

    def peek_at(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def pop(self) -> list:
        entry = heapq.heappop(self._heap)
        if entry[2] is None:
            self.tombstones -= 1
            self.tombstones_popped += 1
        return entry

    def pop_due(self, until: Optional[int] = None) -> Optional[list]:
        """Combined peek+pop: the next entry, or ``None`` when the queue
        is empty or the head fires beyond ``until``."""
        heap = self._heap
        if not heap or (until is not None and heap[0][0] > until):
            return None
        entry = heapq.heappop(heap)
        if entry[2] is None:
            self.tombstones -= 1
            self.tombstones_popped += 1
        return entry

    def cancel(self, entry: list) -> None:
        if entry[2] is not None:
            entry[2] = None
            entry[3] = ()
            self.tombstones += 1

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "pending": len(self._heap),
            "tombstones": self.tombstones,
            "tombstones_popped": self.tombstones_popped,
        }


class CalendarQueue:
    """A calendar queue (Brown 1988) with a far-future heap fallback.

    Three tiers, ordered by fire time:

    * ``_due`` — a small heap holding every entry below ``_dlim``; the
      global minimum always lives here once :meth:`peek_at` has run.
    * the *wheel* — ``nbuckets`` dict buckets of ``width`` ticks each,
      covering ``[_dlim, _wend)``.  Dict buckets give O(1) insert *and*
      O(1) cancel-by-removal, which is what kills timer-tombstone
      buildup.
    * ``_overflow`` — a heap for everything at or beyond ``_wend``
      (e.g. coarse TCP retransmission timers many windows out).  When
      the wheel drains, the window is re-based at the overflow minimum
      and entries spill back in.

    Pops occur in exactly ``(at, seq)`` order: every wheel/overflow
    entry is ``>= _dlim`` while ``_due`` holds everything below it, so
    advancing bucket-by-bucket preserves the total order a single heap
    would produce (``tests/test_sim_calendar_queue.py`` pins this
    against :class:`HeapEventQueue` under randomized schedules).
    """

    kind = "calendar"

    #: default bucket width in ticks (2 µs: around the typical gap
    #: between adjacent CPU/NIC events in the modelled workloads)
    WIDTH = 2_000_000
    NBUCKETS = 1024

    @classmethod
    def for_horizon(cls, horizon_ticks: int,
                    nbuckets: int = NBUCKETS) -> "CalendarQueue":
        """A queue whose wheel spans the observed timer horizon.

        The default 2 µs width was sized for back-to-back CPU/NIC
        events; with 1024 buckets the wheel covers ~2 ms, so every
        coarse protocol timer (TCP retransmit at tens of ms, up to the
        full backed-off RTO) lands in the overflow heap — hundreds of
        ``overflow_spills`` per bench run, each one a heapq round-trip
        plus a tombstone on cancel.  Sizing the width as
        ``horizon / nbuckets`` keeps those timers wheel-resident (O(1)
        insert and cancel) at the cost of coarser buckets, which pop
        order is immune to: ``_due`` always re-sorts a bucket before
        dispatch, so simulated results are bit-identical either way.
        """
        if horizon_ticks <= 0:
            raise ValueError("horizon must be positive")
        width = max(cls.WIDTH, -(-int(horizon_ticks) // nbuckets))
        return cls(nbuckets=nbuckets, width=width)

    def __init__(self, nbuckets: int = NBUCKETS, width: int = WIDTH) -> None:
        if nbuckets <= 0 or width <= 0:
            raise ValueError("nbuckets and width must be positive")
        self._nbuckets = nbuckets
        self._width = width
        self._due: list[list] = []
        self._wheel: list[dict[int, list]] = [dict() for _ in range(nbuckets)]
        self._overflow: list[list] = []
        self._dlim = width        # due covers [0, _dlim)
        self._wend = width * (nbuckets + 1)   # wheel covers [_dlim, _wend)
        self._wheel_count = 0
        # -- statistics --
        self.cancelled_removed = 0   #: cancels satisfied by bucket removal
        self.tombstones = 0          #: pending heap-resident cancels
        self.tombstones_popped = 0
        self.overflow_spills = 0     #: pushes landing beyond the wheel
        self.wheel_refills = 0       #: window re-basings from overflow

    def __len__(self) -> int:
        return len(self._due) + self._wheel_count + len(self._overflow)

    def push(self, entry: list) -> None:
        at = entry[0]
        if at < self._dlim:
            heapq.heappush(self._due, entry)
        elif at < self._wend:
            bucket = self._wheel[(at // self._width) % self._nbuckets]
            bucket[entry[1]] = entry
            entry[4] = bucket
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, entry)
            self.overflow_spills += 1

    def _advance(self) -> bool:
        """Refill ``_due`` from the wheel (re-basing from overflow when
        the wheel is empty); False when nothing is pending anywhere."""
        width = self._width
        while True:
            while self._dlim < self._wend and self._wheel_count:
                bucket = self._wheel[(self._dlim // width) % self._nbuckets]
                self._dlim += width
                if bucket:
                    entries = list(bucket.values())
                    bucket.clear()
                    self._wheel_count -= len(entries)
                    for entry in entries:
                        entry[4] = None
                    self._due = entries
                    heapq.heapify(entries)
                    return True
            # wheel exhausted: re-base the window at the overflow minimum
            if not self._overflow:
                self._dlim = max(self._dlim, self._wend)
                self._wend = self._dlim + width * self._nbuckets
                return False
            self.wheel_refills += 1
            base = (self._overflow[0][0] // width) * width
            self._dlim = max(base, self._wend)
            self._wend = self._dlim + width * self._nbuckets
            overflow = self._overflow
            while overflow and overflow[0][0] < self._wend:
                self.push(heapq.heappop(overflow))

    def peek_at(self) -> Optional[int]:
        if not self._due and not self._advance():
            return None
        return self._due[0][0]

    def pop(self) -> list:
        if not self._due:
            self._advance()
        entry = heapq.heappop(self._due)
        if entry[2] is None:
            self.tombstones -= 1
            self.tombstones_popped += 1
        return entry

    def pop_due(self, until: Optional[int] = None) -> Optional[list]:
        """Combined peek+pop: the next entry, or ``None`` when nothing
        is pending or the global minimum fires beyond ``until``.  This
        is the engine fast loop's single per-event queue call."""
        due = self._due
        if not due:
            if not self._advance():
                return None
            due = self._due
        if until is not None and due[0][0] > until:
            return None
        entry = heapq.heappop(due)
        if entry[2] is None:
            self.tombstones -= 1
            self.tombstones_popped += 1
        return entry

    def cancel(self, entry: list) -> None:
        if entry[2] is None:
            return
        entry[2] = None
        entry[3] = ()
        bucket = entry[4]
        if bucket is not None:
            # wheel-resident: remove outright, no tombstone ever pops
            del bucket[entry[1]]
            entry[4] = None
            self._wheel_count -= 1
            self.cancelled_removed += 1
        else:
            self.tombstones += 1

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "pending": len(self),
            "nbuckets": self._nbuckets,
            "width": self._width,
            "due": len(self._due),
            "wheel": self._wheel_count,
            "overflow": len(self._overflow),
            "cancelled_removed": self.cancelled_removed,
            "tombstones": self.tombstones,
            "tombstones_popped": self.tombstones_popped,
            "overflow_spills": self.overflow_spills,
            "wheel_refills": self.wheel_refills,
        }


class TimerWheel:
    """Armed-timer bookkeeping for schedule-then-usually-cancel users.

    TCP arms a retransmission/delayed-ack timeout for every pump of the
    receive path and cancels it the moment data wins the race; left to
    the raw engine this is the classic tombstone factory.  The wheel
    tracks the live timeouts, funnels cancellation through the engine's
    true-cancel path (bucket removal on the calendar substrate), and
    keeps arm/cancel/fire counters for the benchmarks' drain asserts.
    """

    def __init__(self, engine: "Engine", name: str = "timers"):
        self.engine = engine
        self.name = name
        self.armed = 0
        self.cancelled = 0
        self.fired = 0
        self._live: dict[int, "Timeout"] = {}

    def _prune(self) -> None:
        fired = [key for key, t in self._live.items() if t.triggered]
        for key in fired:
            del self._live[key]
        self.fired += len(fired)

    def after(self, delay: int, value: Any = None) -> "Timeout":
        """Arm a timeout ``delay`` ticks from now."""
        self._prune()
        timeout = self.engine.timeout(delay, value)
        self._live[id(timeout)] = timeout
        self.armed += 1
        return timeout

    def cancel(self, timeout: Optional["Timeout"]) -> None:
        """Disarm; a no-op for None or an already-fired timeout."""
        if timeout is None:
            return
        tracked = self._live.pop(id(timeout), None) is not None
        if timeout.triggered:
            if tracked:
                self.fired += 1
            return
        timeout.cancel()
        if tracked:
            self.cancelled += 1

    @property
    def live(self) -> int:
        self._prune()
        return len(self._live)

    def stats(self) -> dict:
        self._prune()
        return {
            "armed": self.armed,
            "cancelled": self.cancelled,
            "fired": self.fired,
            "live": len(self._live),
        }


class Channel:
    """Unbounded FIFO channel.

    ``put`` never blocks; ``get`` returns an :class:`Event` that triggers
    with the next item (immediately, if one is queued).  Items are
    delivered in insertion order, one per waiter, in waiter-arrival
    order.
    """

    def __init__(self, engine: Engine, name: str = "chan"):
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._waiters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._waiters:
            self._waiters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.engine.event(f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._waiters.append(ev)
        return ev

    def cancel_get(self, ev: Event) -> None:
        """Withdraw a pending ``get`` (e.g. when a timeout won instead)."""
        try:
            self._waiters.remove(ev)
        except ValueError:
            pass

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking poll: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def peek(self) -> Any:
        return self._items[0] if self._items else None


class PriorityLock:
    """A mutex whose wait queue is ordered by (priority, arrival).

    Lower numbers are *more* urgent, matching interrupt-level semantics:
    priority 0 = device interrupt, larger = less urgent.  The holder is
    never preempted — priorities only order the waiters — which models a
    CPU where interrupt handlers run at instruction (here: charge
    quantum) boundaries.
    """

    def __init__(self, engine: Engine, name: str = "lock"):
        self.engine = engine
        self.name = name
        self._acquire_name = name + ".acquire"
        self._locked = False
        self._seq = 0
        self._waiters: list[tuple[int, int, Event]] = []

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def contended(self) -> bool:
        """True when someone is waiting for the lock."""
        return bool(self._waiters)

    def waiting_priority(self) -> Optional[int]:
        """Priority of the most urgent waiter, or None."""
        return self._waiters[0][0] if self._waiters else None

    def acquire(self, priority: int = 10) -> Event:
        if not self._locked:
            self._locked = True
            return self.engine._done
        ev = self.engine.event(self._acquire_name)
        self._seq += 1
        heapq.heappush(self._waiters, (priority, self._seq, ev))
        return ev

    def release(self) -> None:
        if not self._locked:
            raise RuntimeError(f"{self.name}: release of unheld lock")
        if self._waiters:
            _prio, _seq, ev = heapq.heappop(self._waiters)
            ev.succeed(None)  # lock stays held, ownership transfers
        else:
            self._locked = False


class Gate:
    """A reusable level-triggered condition.

    ``wait()`` returns an event that triggers once the gate is open;
    while the gate is open waits pass through immediately.  Used by the
    scheduler: each process waits on its own gate, which the scheduler
    opens for the duration of the process's time slice.
    """

    def __init__(self, engine: Engine, name: str = "gate"):
        self.engine = engine
        self.name = name
        self._wait_name = name + ".wait"
        self._open = False
        self._waiters: deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        self._open = True
        while self._waiters:
            self._waiters.popleft().succeed(None)

    def close(self) -> None:
        self._open = False

    def wait(self) -> Event:
        if self._open:
            return self.engine._done
        ev = self.engine.event(self._wait_name)
        self._waiters.append(ev)
        return ev
