"""Blocking primitives for simulation processes.

Three primitives cover everything the modelled system needs:

* :class:`Channel` — an unbounded FIFO of messages (NIC notification
  rings, socket receive queues, inter-process mailboxes),
* :class:`PriorityLock` — a mutual-exclusion lock with priorities (the
  CPU: interrupt-level work preempts user-level work at charge-quantum
  boundaries),
* :class:`Gate` — a reusable level-triggered condition (scheduler
  "you are now running" signals).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from .engine import Engine, Event

__all__ = ["Channel", "PriorityLock", "Gate"]


class Channel:
    """Unbounded FIFO channel.

    ``put`` never blocks; ``get`` returns an :class:`Event` that triggers
    with the next item (immediately, if one is queued).  Items are
    delivered in insertion order, one per waiter, in waiter-arrival
    order.
    """

    def __init__(self, engine: Engine, name: str = "chan"):
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._waiters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._waiters:
            self._waiters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.engine.event(f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._waiters.append(ev)
        return ev

    def cancel_get(self, ev: Event) -> None:
        """Withdraw a pending ``get`` (e.g. when a timeout won instead)."""
        try:
            self._waiters.remove(ev)
        except ValueError:
            pass

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking poll: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def peek(self) -> Any:
        return self._items[0] if self._items else None


class PriorityLock:
    """A mutex whose wait queue is ordered by (priority, arrival).

    Lower numbers are *more* urgent, matching interrupt-level semantics:
    priority 0 = device interrupt, larger = less urgent.  The holder is
    never preempted — priorities only order the waiters — which models a
    CPU where interrupt handlers run at instruction (here: charge
    quantum) boundaries.
    """

    def __init__(self, engine: Engine, name: str = "lock"):
        self.engine = engine
        self.name = name
        self._locked = False
        self._seq = 0
        self._waiters: list[tuple[int, int, Event]] = []

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def contended(self) -> bool:
        """True when someone is waiting for the lock."""
        return bool(self._waiters)

    def waiting_priority(self) -> Optional[int]:
        """Priority of the most urgent waiter, or None."""
        return self._waiters[0][0] if self._waiters else None

    def acquire(self, priority: int = 10) -> Event:
        ev = self.engine.event(f"{self.name}.acquire")
        if not self._locked:
            self._locked = True
            ev.succeed(None)
        else:
            self._seq += 1
            heapq.heappush(self._waiters, (priority, self._seq, ev))
        return ev

    def release(self) -> None:
        if not self._locked:
            raise RuntimeError(f"{self.name}: release of unheld lock")
        if self._waiters:
            _prio, _seq, ev = heapq.heappop(self._waiters)
            ev.succeed(None)  # lock stays held, ownership transfers
        else:
            self._locked = False


class Gate:
    """A reusable level-triggered condition.

    ``wait()`` returns an event that triggers once the gate is open;
    while the gate is open waits pass through immediately.  Used by the
    scheduler: each process waits on its own gate, which the scheduler
    opens for the duration of the process's time slice.
    """

    def __init__(self, engine: Engine, name: str = "gate"):
        self.engine = engine
        self.name = name
        self._open = False
        self._waiters: deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        self._open = True
        while self._waiters:
            self._waiters.popleft().succeed(None)

    def close(self) -> None:
        self._open = False

    def wait(self) -> Event:
        ev = self.engine.event(f"{self.name}.wait")
        if self._open:
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev
