"""Deterministic discrete-event simulation engine.

This is the substrate every other subsystem runs on: the modelled CPUs,
NICs, wires, kernels, protocol libraries and benchmark workloads are all
*simulation processes* — plain Python generators that ``yield`` events —
scheduled by a single :class:`Engine` with an integer picosecond clock.

The design follows the classic event/process style (as in SimPy) but is
intentionally small, dependency-free and strictly deterministic:

* events scheduled for the same tick fire in scheduling order (a
  monotonically increasing sequence number breaks ties),
* there is no wall-clock anywhere; re-running a workload reproduces the
  exact same event trace.

Example
-------
>>> eng = Engine()
>>> def hello(eng):
...     yield eng.sleep(10)
...     return eng.now
>>> proc = eng.spawn(hello(eng))
>>> eng.run()
>>> proc.value
10
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimError

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "SimProcess",
    "Interrupt",
    "AnyOf",
    "AllOf",
]


class Interrupt(Exception):
    """Thrown into a process by :meth:`SimProcess.interrupt`.

    The ASH runtime uses this to model the paper's two-clock-tick timer
    abort: the kernel interrupts the handler process mid-execution.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it exactly once, resuming every waiting process during the
    same simulation tick.
    """

    __slots__ = ("engine", "name", "_value", "_exc", "_state", "_callbacks")

    _PENDING = 0
    _TRIGGERED = 1

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._state = Event._PENDING
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        return self._state == Event._TRIGGERED

    @property
    def ok(self) -> bool:
        """True once the event succeeded (as opposed to failed)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimError(f"event {self.name!r} has not triggered yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimError(f"event {self.name!r} already triggered")
        self._value = value
        self._state = Event._TRIGGERED
        self.engine._ready(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimError(f"event {self.name!r} already triggered")
        self._exc = exc
        self._state = Event._TRIGGERED
        self.engine._ready(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if done)."""
        if self.triggered:
            # Already dispatched: deliver through the scheduler so late
            # listeners still run, without recursing into the caller.
            self.engine._schedule(self.engine.now, fn, self)
        else:
            self._callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        try:
            self._callbacks.remove(fn)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: int, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout: {delay}")
        super().__init__(engine, name=f"timeout({delay})")
        self.delay = int(delay)
        engine._schedule(engine.now + self.delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if not self.triggered:  # may have been cancelled
            self.succeed(value)

    def cancel(self) -> None:
        """Neutralise the timeout; it will never trigger."""
        if not self.triggered:
            self._state = Event._TRIGGERED
            self._callbacks.clear()


class _ConditionBase(Event):
    __slots__ = ("events",)

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str):
        super().__init__(engine, name=name)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _results(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.ok}

    def _check(self, ev: Event) -> None:
        raise NotImplementedError


class AnyOf(_ConditionBase):
    """Triggers as soon as any child event triggers.

    The value is a dict mapping the already-triggered events to their
    values; failures propagate.
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, events, name="any_of")

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
        else:
            self.succeed(self._results())


class AllOf(_ConditionBase):
    """Triggers once every child event has triggered."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, events, name="all_of")

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
        elif all(e.triggered for e in self.events):
            self.succeed(self._results())


SimGenerator = Generator[Event, Any, Any]


class SimProcess(Event):
    """A running simulation process.

    Wraps a generator that yields :class:`Event` objects.  The process is
    itself an event: it triggers when the generator returns, with the
    generator's return value.  Other processes may therefore ``yield`` a
    process to join it.
    """

    __slots__ = ("gen", "_waiting_on", "_interrupts")

    def __init__(self, engine: "Engine", gen: SimGenerator, name: str = ""):
        super().__init__(engine, name=name or getattr(gen, "__name__", "proc"))
        self.gen = gen
        self._waiting_on: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        engine._schedule(engine.now, self._resume, None, None)

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current tick."""
        if not self.alive:
            return
        self._interrupts.append(Interrupt(cause))
        # Detach from whatever we were waiting on and resume immediately.
        if self._waiting_on is not None:
            self._waiting_on.remove_callback(self._on_event)
            self._waiting_on = None
        self.engine._schedule(self.engine.now, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        if not self.alive or not self._interrupts:
            return
        exc = self._interrupts.pop(0)
        self._step(lambda: self.gen.throw(exc))

    def _on_event(self, ev: Event) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        if ev._exc is not None:
            exc = ev._exc
            self._step(lambda: self.gen.throw(exc))
        else:
            self._resume(ev._value, None)

    def _resume(self, value: Any, _unused: Any = None) -> None:
        if not self.alive:
            return
        self._step(lambda: self.gen.send(value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly: the
            # interruptor is responsible for any cleanup semantics.
            self.succeed(None)
            return
        except BaseException as exc:
            self.fail(exc)
            self.engine._crashed(self, exc)
            return
        if not isinstance(target, Event):
            exc = SimError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event objects (use engine.sleep for delays)"
            )
            self.fail(exc)
            self.engine._crashed(self, exc)
            return
        self._waiting_on = target
        target.add_callback(self._on_event)


class Engine:
    """The discrete-event scheduler: a heap of timestamped callbacks."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: list[tuple[int, int, Callable, tuple]] = []
        self._crashes: list[tuple[SimProcess, BaseException]] = []

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in integer ticks (picoseconds)."""
        return self._now

    # -- event construction --------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    # ``sleep`` reads better in process code than ``timeout``.
    sleep = timeout

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def spawn(self, gen: SimGenerator, name: str = "") -> SimProcess:
        return SimProcess(self, gen, name)

    # -- internal scheduling -------------------------------------------
    def _schedule(self, at: int, fn: Callable, *args: Any) -> None:
        if at < self._now:
            raise SimError(f"cannot schedule into the past ({at} < {self._now})")
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, fn, args))

    def _ready(self, event: Event) -> None:
        """Dispatch an event's callbacks at the current tick."""
        callbacks, event._callbacks = event._callbacks, []
        for fn in callbacks:
            self._schedule(self._now, fn, event)

    def _crashed(self, proc: SimProcess, exc: BaseException) -> None:
        self._crashes.append((proc, exc))

    # -- run loop --------------------------------------------------------
    def run(self, until: Optional[int] = None, raise_crashes: bool = True) -> None:
        """Run until the event heap drains or the clock reaches ``until``.

        If any process died with an unhandled exception the first such
        exception is re-raised at the end of the run (pass
        ``raise_crashes=False`` to inspect ``engine.crashes`` instead).
        """
        while self._heap:
            at, _seq, fn, args = self._heap[0]
            if until is not None and at > until:
                # events remain beyond the horizon: park the clock there
                self._now = until
                break
            heapq.heappop(self._heap)
            self._now = at
            fn(*args)
        # an empty heap leaves the clock at the last event (the
        # simulation is over; no reason to fast-forward to `until`)
        if raise_crashes and self._crashes:
            _proc, exc = self._crashes[0]
            raise exc

    @property
    def crashes(self) -> list[tuple[SimProcess, BaseException]]:
        return list(self._crashes)

    @property
    def idle(self) -> bool:
        return not self._heap
