"""Deterministic discrete-event simulation engine.

This is the substrate every other subsystem runs on: the modelled CPUs,
NICs, wires, kernels, protocol libraries and benchmark workloads are all
*simulation processes* — plain Python generators that ``yield`` events —
scheduled by a single :class:`Engine` with an integer picosecond clock.

The design follows the classic event/process style (as in SimPy) but is
intentionally small, dependency-free and strictly deterministic:

* events scheduled for the same tick fire in scheduling order (a
  monotonically increasing sequence number breaks ties),
* there is no wall-clock anywhere; re-running a workload reproduces the
  exact same event trace.

Example
-------
>>> eng = Engine()
>>> def hello(eng):
...     yield eng.sleep(10)
...     return eng.now
>>> proc = eng.spawn(hello(eng))
>>> eng.run()
>>> proc.value
10
"""

from __future__ import annotations

import os
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimError
from .queues import CalendarQueue, HeapEventQueue

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "SimProcess",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SUBSTRATE_ENV",
    "active_substrate",
    "DEFAULT_TIMER_HORIZON_US",
]

#: environment variable selecting the simulation substrate
SUBSTRATE_ENV = "REPRO_SIM_SUBSTRATE"

_SUBSTRATES = ("fast", "legacy")

#: Default timer horizon (µs) used to auto-size the calendar queue's
#: bucket width: the farthest ahead the modelled protocols routinely
#: schedule.  Anchored to TCP's worst case — ``RTO_US`` backed off by
#: ``MAX_RTO_BACKOFF`` (50 ms × 8 = 400 ms) — with headroom; the sim
#: layer cannot import the net layer (layering is one-way), so the
#: constant lives here and ``tests/test_scale_smp.py`` cross-checks it
#: against the TCP calibration to keep the two from drifting apart.
DEFAULT_TIMER_HORIZON_US = 500_000


def active_substrate(override: Optional[str] = None) -> str:
    """Resolve the simulation substrate: ``fast`` (calendar-queue event
    engine, vectorized cache model, zero-copy packet buffers) or
    ``legacy`` (single heapq, scalar cache walks, ``bytes`` copies at
    every packet hop).

    ``REPRO_SIM_SUBSTRATE=legacy`` is the escape hatch; both substrates
    produce bit-identical simulated cycles (pinned by
    ``tests/test_determinism.py``).
    """
    value = (override or os.environ.get(SUBSTRATE_ENV) or "fast").lower()
    if value not in _SUBSTRATES:
        raise SimError(
            f"unknown {SUBSTRATE_ENV}={value!r} (expected one of {_SUBSTRATES})"
        )
    return value


class Interrupt(Exception):
    """Thrown into a process by :meth:`SimProcess.interrupt`.

    The ASH runtime uses this to model the paper's two-clock-tick timer
    abort: the kernel interrupts the handler process mid-execution.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it exactly once, resuming every waiting process during the
    same simulation tick.
    """

    __slots__ = ("engine", "name", "_value", "_exc", "_state", "_callbacks")

    _PENDING = 0
    _TRIGGERED = 1

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._state = Event._PENDING
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        return self._state == Event._TRIGGERED

    @property
    def ok(self) -> bool:
        """True once the event succeeded (as opposed to failed)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimError(f"event {self.name!r} has not triggered yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimError(f"event {self.name!r} already triggered")
        self._value = value
        self._state = Event._TRIGGERED
        self.engine._ready(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimError(f"event {self.name!r} already triggered")
        self._exc = exc
        self._state = Event._TRIGGERED
        self.engine._ready(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if done)."""
        if self.triggered:
            # Already dispatched: deliver through the scheduler so late
            # listeners still run, without recursing into the caller.
            self.engine._schedule(self.engine.now, fn, self)
        else:
            self._callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        try:
            self._callbacks.remove(fn)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay", "_entry")

    def __init__(self, engine: "Engine", delay: int, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout: {delay}")
        # Event.__init__ flattened: this runs a few hundred thousand
        # times per simulated second on the hot quantum-sleep path.
        self.engine = engine
        self.name = "timeout"
        self._value = None
        self._exc = None
        self._state = Event._PENDING
        self._callbacks = []
        self.delay = delay = int(delay)
        # ``_schedule`` flattened (its into-the-past guard cannot fire:
        # ``delay >= 0``).  The queue entry's callable slot holds the
        # Timeout itself (``__call__`` aliases ``_fire``): no
        # bound-method allocation per schedule, and the run loops can
        # type-dispatch on it.
        engine._seq = seq = engine._seq + 1
        engine._scheduled += 1
        self._entry = entry = [engine._now + delay, seq, self, (value,), None]
        engine._queue.push(entry)

    def _fire(self, value: Any) -> None:
        if not self.triggered:  # may have been cancelled
            self.succeed(value)

    __call__ = _fire

    def cancel(self) -> None:
        """Neutralise the timeout; it will never trigger.

        The scheduled entry is withdrawn from the event queue: removed
        outright when the calendar wheel still holds it, otherwise left
        as a tombstone the run loop pops and skips.
        """
        if not self.triggered:
            self._state = Event._TRIGGERED
            self._callbacks.clear()
            self.engine._cancel(self._entry)


class _ConditionBase(Event):
    __slots__ = ("events",)

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str):
        super().__init__(engine, name=name)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _results(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.ok}

    def _check(self, ev: Event) -> None:
        raise NotImplementedError


class AnyOf(_ConditionBase):
    """Triggers as soon as any child event triggers.

    The value is a dict mapping the already-triggered events to their
    values; failures propagate.
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, events, name="any_of")

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
        else:
            self.succeed(self._results())


class AllOf(_ConditionBase):
    """Triggers once every child event has triggered."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, events, name="all_of")

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
        elif all(e.triggered for e in self.events):
            self.succeed(self._results())


SimGenerator = Generator[Event, Any, Any]


class SimProcess(Event):
    """A running simulation process.

    Wraps a generator that yields :class:`Event` objects.  The process is
    itself an event: it triggers when the generator returns, with the
    generator's return value.  Other processes may therefore ``yield`` a
    process to join it.
    """

    __slots__ = ("gen", "_waiting_on", "_interrupts", "_on_event_cb")

    def __init__(self, engine: "Engine", gen: SimGenerator, name: str = ""):
        super().__init__(engine, name=name or getattr(gen, "__name__", "proc"))
        self.gen = gen
        self._waiting_on: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        # the bound method is allocated once: it is registered as an
        # event callback on every wait, which would otherwise cost a
        # fresh bound-method object each time
        self._on_event_cb = self._on_event
        engine._schedule(engine.now, self._resume, None, None)

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current tick."""
        if not self.alive:
            return
        self._interrupts.append(Interrupt(cause))
        # Detach from whatever we were waiting on and resume immediately.
        if self._waiting_on is not None:
            self._waiting_on.remove_callback(self._on_event_cb)
            self._waiting_on = None
        self.engine._schedule(self.engine.now, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        if not self.alive or not self._interrupts:
            return
        exc = self._interrupts.pop(0)
        self._step(lambda: self.gen.throw(exc))

    def _on_event(self, ev: Event) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        if ev._exc is not None:
            exc = ev._exc
            self._step(lambda: self.gen.throw(exc))
        else:
            self._resume(ev._value, None)

    def _resume(self, value: Any, _unused: Any = None) -> None:
        if not self.alive:
            return
        self._step(lambda: self.gen.send(value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly: the
            # interruptor is responsible for any cleanup semantics.
            self.succeed(None)
            return
        except BaseException as exc:
            self.fail(exc)
            self.engine._crashed(self, exc)
            return
        if not isinstance(target, Event):
            exc = SimError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event objects (use engine.sleep for delays)"
            )
            self.fail(exc)
            self.engine._crashed(self, exc)
            return
        self._waiting_on = target
        target.add_callback(self._on_event_cb)


class Engine:
    """The discrete-event scheduler: a queue of timestamped callbacks.

    The queue implementation is selected by the *substrate*: the
    ``fast`` default uses a :class:`~repro.sim.queues.CalendarQueue`
    (bucketed wheel + far-future heap, with true O(1) cancellation for
    wheel-resident timers); ``legacy`` keeps the original single binary
    heap.  Both pop in identical ``(time, seq)`` order, so the choice is
    invisible to simulated results.
    """

    def __init__(self, substrate: Optional[str] = None,
                 timer_horizon_us: Optional[float] = None) -> None:
        self._now = 0
        self._seq = 0
        self.substrate = active_substrate(substrate)
        if timer_horizon_us is None:
            timer_horizon_us = DEFAULT_TIMER_HORIZON_US
        self.timer_horizon_us = timer_horizon_us
        self._queue = (
            CalendarQueue.for_horizon(int(timer_horizon_us * 1_000_000))
            if self.substrate == "fast"
            else HeapEventQueue()
        )
        self._crashes: list[tuple[SimProcess, BaseException]] = []
        #: monotonic trace-id mint (telemetry trace context).  Lives on
        #: the engine so ids are unique across every node sharing the
        #: clock, and reset with it: identical runs mint identical ids.
        self.trace_seq = 0
        # scheduling statistics (see stats())
        self._scheduled = 0
        self._fired = 0
        self._cancelled = 0
        self._inlined = 0  # queue hops elided by the fast loop
        self._published: dict[str, int] = {}  # last-exported counter values
        # Shared pre-triggered event: what an open gate or an
        # uncontended lock hands back.  Stateless (value None, no
        # callbacks survive on it), so every pass-through wait can
        # yield the same object instead of allocating one.
        self._done = Event(self, "done")
        self._done._state = Event._TRIGGERED

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in integer ticks (picoseconds)."""
        return self._now

    def next_trace_id(self) -> int:
        """Mint a run-unique message trace id (telemetry sidecar only:
        ids never feed back into scheduling, costs or wire contents)."""
        self.trace_seq += 1
        return self.trace_seq

    # -- event construction --------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    # ``sleep`` reads better in process code than ``timeout``.
    sleep = timeout

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def spawn(self, gen: SimGenerator, name: str = "") -> SimProcess:
        return SimProcess(self, gen, name)

    # -- internal scheduling -------------------------------------------
    def _schedule(self, at: int, fn: Callable, *args: Any) -> list:
        """Enqueue ``fn(*args)`` at tick ``at``; returns the queue entry
        (a mutable ``[at, seq, fn, args, slot]`` list) so the caller can
        cancel it later via :meth:`_cancel`."""
        if at < self._now:
            raise SimError(f"cannot schedule into the past ({at} < {self._now})")
        self._seq += 1
        self._scheduled += 1
        entry = [at, self._seq, fn, args, None]
        self._queue.push(entry)
        return entry

    def _cancel(self, entry: list) -> None:
        """Withdraw a scheduled entry (no-op if it already fired)."""
        if entry[2] is not None:
            self._queue.cancel(entry)
            self._cancelled += 1

    def _ready(self, event: Event) -> None:
        """Dispatch an event's callbacks at the current tick."""
        callbacks, event._callbacks = event._callbacks, []
        for fn in callbacks:
            self._schedule(self._now, fn, event)

    def _crashed(self, proc: SimProcess, exc: BaseException) -> None:
        self._crashes.append((proc, exc))

    # -- run loop --------------------------------------------------------
    def run(self, until: Optional[int] = None, raise_crashes: bool = True) -> None:
        """Run until the event queue drains or the clock reaches ``until``.

        The ``fast`` substrate uses a fused dispatch loop that inlines
        the two hottest event shapes (a timeout firing, a process
        resuming) — same events, same order, far fewer interpreter
        operations per event.  ``legacy`` keeps the original loop.

        If any process died with an unhandled exception the first such
        exception is re-raised at the end of the run (pass
        ``raise_crashes=False`` to inspect ``engine.crashes`` instead).
        """
        if self.substrate == "fast":
            self._run_fast(until)
        else:
            self._run_legacy(until)
        if raise_crashes and self._crashes:
            _proc, exc = self._crashes[0]
            raise exc

    def _run_legacy(self, until: Optional[int]) -> None:
        queue = self._queue
        while True:
            at = queue.peek_at()
            if at is None:
                break
            if until is not None and at > until:
                # events remain beyond the horizon: park the clock there
                self._now = until
                break
            entry = queue.pop()
            self._now = at
            fn, args = entry[2], entry[3]
            if fn is not None:  # tombstones pop silently
                entry[2] = None  # mark fired: cancel is now a no-op
                self._fired += 1
                fn(*args)
        # an empty queue leaves the clock at the last event (the
        # simulation is over; no reason to fast-forward to `until`)

    def _run_fast(self, until: Optional[int]) -> None:
        """Fused dispatch loop.

        Dispatch here is an exact transcription of what the generic
        path does — ``Timeout._fire`` → ``succeed`` → ``_ready``, and
        ``SimProcess._on_event``/``_resume`` → ``_step`` — with the
        intermediate bound-method hops inlined.  Anything that is not
        one of those two shapes falls through to a plain ``fn(*args)``
        call, so ordering and side effects are identical to
        :meth:`_run_legacy` on the same schedule.
        """
        queue = self._queue
        pop_due = queue.pop_due
        push = queue.push
        peek_at = queue.peek_at
        proc_on_event = SimProcess._on_event
        proc_resume = SimProcess._resume
        send_step = self._send_step
        # Dispatch ledger deltas are accumulated locally and flushed on
        # exit: reentrant increments (``_schedule`` from callbacks,
        # ``_send_step``) still hit the attributes directly, and deltas
        # compose.  ``_seq`` must NOT be localized — ``_schedule`` reads
        # and bumps it reentrantly mid-loop.
        fired_d = sched_d = inl_d = 0
        try:
            while True:
                entry = pop_due(until)
                if entry is None:
                    if until is not None and len(queue):
                        # events remain beyond the horizon: park the clock
                        self._now = until
                    break
                self._now = entry[0]
                fn = entry[2]
                if fn is None:  # tombstones pop silently
                    continue
                entry[2] = None  # mark fired: cancel is now a no-op
                fired_d += 1
                if fn.__class__ is Timeout:
                    # Timeout._fire → succeed → _ready, inlined.
                    if fn._state == 0:  # may have been cancelled
                        fn._value = entry[3][0]
                        fn._state = 1
                        cbs = fn._callbacks
                        if cbs:
                            fn._callbacks = []
                            now = self._now
                            # Tie test against the due heap directly
                            # (re-read each pass: _advance rebinds it).
                            # When it is empty, fall back to peek_at —
                            # its eager bucket advance keeps the wheel
                            # position ahead of the clock, so the next
                            # near-future push lands straight in the due
                            # heap instead of paying bucket residency.
                            due = queue._due
                            if (due[0][0] != now) if due else (peek_at() != now):
                                # No other entry at this tick: running the
                                # callbacks right now, in list order, is
                                # provably order-identical to scheduling
                                # them — anything they schedule at this
                                # tick still lands after all of them, just
                                # as it would behind the hop entries.
                                for cb in cbs:
                                    # keep the ledger comparable with the
                                    # hop path: each callback counts as one
                                    # scheduled-and-fired dispatch
                                    sched_d += 1
                                    fired_d += 1
                                    inl_d += 1
                                    cbf = getattr(cb, "__func__", None)
                                    if cbf is proc_on_event:
                                        proc = cb.__self__
                                        if proc._state == 0:
                                            proc._waiting_on = None
                                            send_step(proc, fn._value)
                                    else:
                                        cb(fn)
                            else:
                                for cb in cbs:
                                    self._seq += 1
                                    sched_d += 1
                                    push([now, self._seq, cb, (fn,), None])
                else:
                    func = getattr(fn, "__func__", None)
                    if func is proc_on_event:
                        # SimProcess._on_event → _resume → _step, inlined.
                        proc = fn.__self__
                        if proc._state == 0:  # alive
                            ev = entry[3][0]
                            proc._waiting_on = None
                            if ev._exc is not None:
                                fn(ev)  # failure path: take the generic route
                            else:
                                send_step(proc, ev._value)
                    elif func is proc_resume:
                        proc = fn.__self__
                        if proc._state == 0:
                            send_step(proc, entry[3][0])
                    else:
                        fn(*entry[3])
        finally:
            self._fired += fired_d
            self._scheduled += sched_d
            self._inlined += inl_d

    def _send_step(self, proc: "SimProcess", value: Any) -> None:
        """Advance a process generator with ``value`` (the fast loop's
        inlined ``SimProcess._step`` + ``add_callback``).

        When the yielded target has *already* triggered (an uncontended
        lock, an open gate) the generic path bounces through the queue:
        a same-tick hop entry that immediately resumes the process.  If
        no other entry is pending at this tick that hop is the sole
        entry and pops next with nothing in between, so resuming inline
        is order-identical — the loop below does exactly that, paying
        one queue round-trip less per pass-through wait.
        """
        gen_send = proc.gen.send
        queue = self._queue
        peek_at = queue.peek_at
        done = self._done
        on_event_cb = proc._on_event_cb
        now = self._now  # constant for the whole call: no time passes here
        elided = 0
        try:
            while True:
                try:
                    target = gen_send(value)
                except StopIteration as stop:
                    proc.succeed(stop.value)
                    return
                except Interrupt:
                    proc.succeed(None)
                    return
                except BaseException as exc:
                    proc.fail(exc)
                    self._crashed(proc, exc)
                    return
                if target is done:
                    # pass-through wait (open gate, uncontended lock):
                    # the shared pre-triggered event carries no value
                    # and no failure, so only the tie test remains
                    due = queue._due  # re-read: _advance rebinds it
                    if due:
                        if due[0][0] == now:
                            proc._waiting_on = target
                            self._schedule(now, on_event_cb, target)
                            return
                    else:
                        # nothing beyond _due can tie at `now` (all
                        # wheel/overflow entries sit at >= _dlim > now);
                        # peek anyway for its eager bucket advance
                        peek_at()
                    elided += 1
                    value = None
                    continue
                if not isinstance(target, Event):
                    exc = SimError(
                        f"process {proc.name!r} yielded {target!r}; processes "
                        "must yield Event objects (use engine.sleep for delays)"
                    )
                    proc.fail(exc)
                    self._crashed(proc, exc)
                    return
                proc._waiting_on = target
                if target._state == Event._PENDING:
                    target._callbacks.append(on_event_cb)
                    return
                due = queue._due  # re-read each pass: _advance rebinds it
                if target._exc is not None or (
                    (due[0][0] == now) if due else (peek_at() == now)
                ):
                    # failure delivery or same-tick siblings: generic hop
                    self._schedule(now, on_event_cb, target)
                    return
                elided += 1
                proc._waiting_on = None
                value = target._value
        finally:
            if elided:
                # keep the scheduled/fired ledger comparable: each
                # elided hop counts as one scheduled-and-fired dispatch
                self._scheduled += elided
                self._fired += elided
                self._inlined += elided

    @property
    def crashes(self) -> list[tuple[SimProcess, BaseException]]:
        return list(self._crashes)

    @property
    def idle(self) -> bool:
        return len(self._queue) == 0

    # -- introspection ----------------------------------------------------
    def stats(self) -> dict:
        """Scheduling accounting: events scheduled/fired/cancelled, plus
        the queue's own structure-specific counters (tombstones pending
        and popped, wheel occupancy, overflow spills...)."""
        return {
            "substrate": self.substrate,
            "now_ps": self._now,
            "scheduled": self._scheduled,
            "fired": self._fired,
            "cancelled": self._cancelled,
            "inlined": self._inlined,
            "pending": len(self._queue),
            "queue": self._queue.stats(),
        }

    def publish_telemetry(self, hub) -> None:
        """Export the scheduling counters into a telemetry hub as
        ``sim.calendar.*`` (the engine has no hub of its own; benchmarks
        attach it to a node's).  Counter exports are delta-based, so
        calling again after further simulation publishes only the growth
        — phased runs never double-count."""
        if hub is None or not hub.enabled:
            return
        queue_stats = self._queue.stats()
        totals = {
            "sim.calendar.scheduled": self._scheduled,
            "sim.calendar.fired": self._fired,
            "sim.calendar.cancelled": self._cancelled,
            "sim.calendar.inlined": self._inlined,
            "sim.calendar.tombstones_popped":
                queue_stats.get("tombstones_popped", 0),
        }
        for name, total in totals.items():
            prev = self._published.get(name, 0)
            if total > prev:
                hub.counter(name).inc(total - prev)
                self._published[name] = total
        hub.gauge("sim.calendar.pending").set(len(self._queue))
        hub.gauge("sim.calendar.tombstones").set(
            queue_stats.get("tombstones", 0)
        )
