"""Applications built on the ASH system (DSM, in the paper's spirit)."""

from .dsm import DsmNode, DsmRegion

__all__ = ["DsmNode", "DsmRegion"]
