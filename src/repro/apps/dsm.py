"""A miniature CRL-style distributed shared memory on ASHs.
(See ``examples/dsm_remote_write.py`` for the narrated remote-write
walkthrough; :class:`DsmClient` adds reads and locks on top.)

The paper closes: "we have also found ASHs useful in another context:
that of executing the software distributed shared memory actions of CRL
for various parallel applications", and Section V-C names "remote lock
acquisition" as a canonical control-initiation use.  This module builds
that application: a *home node* exports a memory region and a lock
array, and serves four operations entirely inside its kernel — no home
process is ever scheduled:

* ``READ`` — reply with region bytes, sent zero-copy straight out of
  the region (``ash_send`` reads the application data in place);
* ``WRITE`` — bounds-checked DILP copy of the payload into the region,
  acknowledged from the kernel;
* ``LOCK_ACQ`` — test-and-set on a lock word, grant/deny reply;
* ``LOCK_REL`` — clear the lock word.

The four handlers are fragments in one
:class:`~repro.ash.active.ActiveMessageLayer` dispatcher, so the whole
protocol is one downloaded ASH with a jump table.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from ..ash.active import AM_HEADER, ActiveMessageLayer, am_message
from ..errors import ProtocolError
from ..hw.link import Frame
from ..sim.units import us

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Endpoint, Kernel
    from ..kernel.process import Process

__all__ = ["DsmRegion", "DsmNode", "DsmClient",
           "OP_READ", "OP_WRITE", "OP_LOCK_ACQ", "OP_LOCK_REL"]

OP_READ = 0
OP_WRITE = 1
OP_LOCK_ACQ = 2
OP_LOCK_REL = 3

# context block layout (home node)
CTX_REGION_BASE = 0
CTX_REGION_SIZE = 4
CTX_REPLY_VCI = 8
CTX_SCRATCH = 12
CTX_LOCKS_BASE = 16
CTX_NLOCKS = 20
CTX_SIZE = 32

STATUS_OK = 1
STATUS_DENIED = 0


class DsmRegion:
    """The exported memory on the home node."""

    def __init__(self, kernel: "Kernel", size: int, n_locks: int = 8,
                 name: str = "dsm"):
        mem = kernel.node.memory
        self.size = size
        self.n_locks = n_locks
        self.region = mem.alloc(f"{name}.region", size)
        self.locks = mem.alloc(f"{name}.locks", 4 * n_locks)
        self.scratch = mem.alloc(f"{name}.scratch", 64)
        self.ctx = mem.alloc(f"{name}.ctx", CTX_SIZE)
        self.mem = mem

    def read_local(self, offset: int, length: int) -> bytes:
        return self.mem.read(self.region.base + offset, length)

    def write_local(self, offset: int, data: bytes) -> None:
        self.mem.write(self.region.base + offset, data)

    def lock_word(self, index: int) -> int:
        return self.mem.load_u32(self.locks.base + 4 * index)


class DsmNode:
    """Home-node server: installs the dispatcher ASH."""

    def __init__(self, kernel: "Kernel", ep: "Endpoint", region: DsmRegion,
                 reply_vci: int, sandbox: bool = True):
        from ..pipes import PIPE_WRITE, compile_pl, pipel

        self.kernel = kernel
        self.region = region
        mem = kernel.node.memory
        mem.store_u32(region.ctx.base + CTX_REGION_BASE, region.region.base)
        mem.store_u32(region.ctx.base + CTX_REGION_SIZE, region.size)
        mem.store_u32(region.ctx.base + CTX_REPLY_VCI, reply_vci)
        mem.store_u32(region.ctx.base + CTX_SCRATCH, region.scratch.base)
        mem.store_u32(region.ctx.base + CTX_LOCKS_BASE, region.locks.base)
        mem.store_u32(region.ctx.base + CTX_NLOCKS, region.n_locks)

        pipeline = compile_pl(pipel(name=f"{ep.name}.dsmcopy"), PIPE_WRITE,
                              cal=kernel.cal)
        self._ilp = kernel.ash_system.register_ilp(pipeline)

        layer = ActiveMessageLayer(kernel, ep, context_word=region.ctx.base)
        layer.register("read", self._emit_read)
        layer.register("write", self._emit_write(self._ilp))
        layer.register("lock_acq", self._emit_lock_acq)
        layer.register("lock_rel", self._emit_lock_rel)
        allowed = [
            (region.region.base, region.size),
            (region.locks.base, 4 * region.n_locks),
            (region.scratch.base, 64),
            (region.ctx.base, CTX_SIZE),
        ]
        layer.finalize(allowed, sandbox=sandbox)
        self.layer = layer

    # -- fragment emitters ---------------------------------------------------
    @staticmethod
    def _emit_read(b) -> None:
        """READ: arg0 = offset, arg1 = length; reply with the bytes,
        zero-copy from the region itself."""
        bad = b.label()
        off = b.getreg()
        b.v_ld32(off, b.MSG, 4)
        length = b.getreg()
        b.v_ld32(length, b.MSG, 8)
        end = b.getreg()
        b.v_addu(end, off, length)
        limit = b.getreg()
        b.v_ld32(limit, b.CTX, CTX_REGION_SIZE)
        b.v_bltu(limit, end, bad)               # off + len > size: refuse
        src = b.getreg()
        b.v_ld32(src, b.CTX, CTX_REGION_BASE)
        b.v_addu(src, src, off)
        vci = b.getreg()
        b.v_ld32(vci, b.CTX, CTX_REPLY_VCI)
        b.v_send(src, length, vci)              # data leaves in place
        b.v_consume()
        b.mark(bad)
        b.v_pass()

    @staticmethod
    def _emit_write(ilp_id: int):
        def emit(b) -> None:
            # NOTE: trusted calls clobber A0-A3 (so also MSG/LEN/CTX);
            # everything needed after ``ash_dilp``/``ash_send`` must be
            # hoisted into temporaries first.
            bad = b.label()
            off = b.getreg()
            b.v_ld32(off, b.MSG, 4)
            length = b.getreg()
            b.v_li(length, AM_HEADER)
            b.v_subu(length, b.LEN, length)     # payload length
            scratch = b.getreg()                # bounds scratch, reused
            b.v_addu(scratch, off, length)      # end = off + len
            limit = b.getreg()
            b.v_ld32(limit, b.CTX, CTX_REGION_SIZE)
            b.v_bltu(limit, scratch, bad)
            b.v_andi(scratch, length, 3)
            b.v_bne(scratch, b.ZERO, bad)       # DILP wants word multiples
            dst = b.getreg()
            b.v_ld32(dst, b.CTX, CTX_REGION_BASE)
            b.v_addu(dst, dst, off)
            src = b.getreg()
            b.v_addiu(src, b.MSG, AM_HEADER)
            # hoist the reply parameters before the calls clobber CTX
            b.v_ld32(scratch, b.CTX, CTX_SCRATCH)
            vci = limit                          # limit is dead: reuse
            b.v_ld32(vci, b.CTX, CTX_REPLY_VCI)
            b.v_dilp(ilp_id, src, dst, length)
            # ack from the kernel (src/off are dead after the copy)
            b.v_li(src, STATUS_OK)
            b.v_st32(src, scratch, 0)
            b.v_li(src, 4)
            b.v_send(scratch, src, vci)
            b.v_consume()
            b.mark(bad)
            b.v_pass()

        return emit

    @staticmethod
    def _emit_lock_acq(b) -> None:
        """LOCK_ACQ: arg0 = lock index; test-and-set, reply grant/deny."""
        bad = b.label()
        denied = b.label()
        reply = b.label()
        idx = b.getreg()
        b.v_ld32(idx, b.MSG, 4)
        nlocks = b.getreg()
        b.v_ld32(nlocks, b.CTX, CTX_NLOCKS)
        b.v_bgeu(idx, nlocks, bad)
        addr = b.getreg()
        b.v_sll(addr, idx, 2)
        base = b.getreg()
        b.v_ld32(base, b.CTX, CTX_LOCKS_BASE)
        b.v_addu(addr, addr, base)
        word = b.getreg()
        b.v_ld32(word, addr, 0)
        status = b.getreg()
        b.v_bne(word, b.ZERO, denied)
        b.v_li(word, 1)                         # take it
        b.v_st32(word, addr, 0)
        b.v_li(status, STATUS_OK)
        b.v_j(reply)
        b.mark(denied)
        b.v_li(status, STATUS_DENIED)
        b.mark(reply)
        scratch = b.getreg()
        b.v_ld32(scratch, b.CTX, CTX_SCRATCH)
        b.v_st32(status, scratch, 0)
        b.v_li(status, 4)                       # reuse as length
        vci = b.getreg()
        b.v_ld32(vci, b.CTX, CTX_REPLY_VCI)
        b.v_send(scratch, status, vci)
        b.v_consume()
        b.mark(bad)
        b.v_pass()

    @staticmethod
    def _emit_lock_rel(b) -> None:
        bad = b.label()
        idx = b.getreg()
        b.v_ld32(idx, b.MSG, 4)
        nlocks = b.getreg()
        b.v_ld32(nlocks, b.CTX, CTX_NLOCKS)
        b.v_bgeu(idx, nlocks, bad)
        addr = b.getreg()
        b.v_sll(addr, idx, 2)
        base = b.getreg()
        b.v_ld32(base, b.CTX, CTX_LOCKS_BASE)
        b.v_addu(addr, addr, base)
        b.v_st32(b.ZERO, addr, 0)
        scratch = b.getreg()
        b.v_ld32(scratch, b.CTX, CTX_SCRATCH)
        status = b.getreg()
        b.v_li(status, STATUS_OK)
        b.v_st32(status, scratch, 0)
        b.v_li(status, 4)
        vci = b.getreg()
        b.v_ld32(vci, b.CTX, CTX_REPLY_VCI)
        b.v_send(scratch, status, vci)
        b.v_consume()
        b.mark(bad)
        b.v_pass()


class DsmClient:
    """Peer-side API: one outstanding operation at a time."""

    def __init__(self, kernel: "Kernel", nic, tx_vci: int,
                 reply_ep: "Endpoint", backoff_us: float = 50.0):
        self.kernel = kernel
        self.nic = nic
        self.tx_vci = tx_vci
        self.reply_ep = reply_ep
        self.backoff_us = backoff_us
        self.lock_retries = 0

    def _rpc(self, proc: "Process", index: int, arg0: int, arg1: int,
             payload: bytes) -> Generator:
        yield from self.kernel.sys_net_send(
            proc, self.nic,
            Frame(am_message(index, arg0, arg1, payload), vci=self.tx_vci),
        )
        desc = yield from self.kernel.sys_recv_poll(proc, self.reply_ep)
        data = self.kernel.node.memory.read(desc.addr, desc.length)
        yield from self.kernel.sys_replenish(proc, self.reply_ep, desc)
        return data

    def read(self, proc: "Process", offset: int, length: int) -> Generator:
        data = yield from self._rpc(proc, OP_READ, offset, length, b"")
        if len(data) != length:
            raise ProtocolError(
                f"dsm read: expected {length} bytes, got {len(data)}"
            )
        return data

    def write(self, proc: "Process", offset: int, data: bytes) -> Generator:
        if len(data) % 4:
            raise ProtocolError("dsm writes must be multiples of 4 bytes")
        reply = yield from self._rpc(proc, OP_WRITE, offset, 0, data)
        status = int.from_bytes(reply[:4], "little")
        if status != STATUS_OK:
            raise ProtocolError("dsm write refused")

    def lock_acquire(self, proc: "Process", index: int,
                     max_tries: int = 1000) -> Generator:
        """Spin (with backoff) until the home node grants the lock."""
        for _ in range(max_tries):
            reply = yield from self._rpc(proc, OP_LOCK_ACQ, index, 0, b"")
            if int.from_bytes(reply[:4], "little") == STATUS_OK:
                return
            self.lock_retries += 1
            yield from proc.compute_us(self.backoff_us)
        raise ProtocolError(f"dsm lock {index}: starved")

    def lock_release(self, proc: "Process", index: int) -> Generator:
        yield from self._rpc(proc, OP_LOCK_REL, index, 0, b"")
