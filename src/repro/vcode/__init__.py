"""VCODE: the dynamic code generation substrate handlers are written in."""

from .asm_text import parse_asm
from .builder import Label, VBuilder
from .isa import Insn, Program, assemble, insn_cost
from .registers import P_TMP, P_VAR, RegisterAllocator
from .vm import TrustedCallContext, Vm, VmResult
from .extensions import (
    build_byteswap,
    build_checksum,
    build_copy,
    build_integrated,
    emit_fold16,
    fold_checksum,
)

__all__ = [
    "parse_asm",
    "Label",
    "VBuilder",
    "Insn",
    "Program",
    "assemble",
    "insn_cost",
    "P_TMP",
    "P_VAR",
    "RegisterAllocator",
    "TrustedCallContext",
    "Vm",
    "VmResult",
    "build_byteswap",
    "build_checksum",
    "build_copy",
    "build_integrated",
    "emit_fold16",
    "fold_checksum",
]
