"""The VCODE instruction set: a portable RISC the handlers are written in.

The paper writes pipes (and, conceptually, handlers) in VCODE — "a set
of C macros that provide a low-level extension language for dynamic code
generation ... the interface is that of an extended RISC machine:
instructions are low-level register-to-register operations."  We model
that machine directly: 32 registers, MIPS-flavoured three-operand
unsigned arithmetic, load/store with displacement, branches, an
indirect jump, trusted kernel calls, and the paper's networking
extensions (``cksum32``, byteswaps).

Signed arithmetic and floating point exist in the ISA *so the verifier
has something to reject*: the paper prevents overflow exceptions "by
converting all signed arithmetic instructions to unsigned ones" and
prevents FP use at download time.

Code addresses are instruction indices.  A :class:`Program` is a list of
:class:`Insn` plus a resolved label map; branches hold the label name
and, after :func:`assemble`, the resolved target index in ``target``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Optional

from ..errors import VcodeError
from ..hw.calibration import Calibration

__all__ = [
    "Insn",
    "Program",
    "assemble",
    "OPCODES",
    "ALU_OPS",
    "LOAD_OPS",
    "STORE_OPS",
    "BRANCH_OPS",
    "FORBIDDEN_OPS",
    "CHECK_OPS",
    "REG_ZERO",
    "REG_V0",
    "REG_A0",
    "REG_A1",
    "REG_A2",
    "REG_A3",
    "REG_SP",
    "NUM_REGS",
    "insn_cost",
]

# -- register conventions (MIPS o32-flavoured) -----------------------------
NUM_REGS = 32
REG_ZERO = 0          #: hardwired zero
REG_V0 = 2            #: return value
REG_A0, REG_A1, REG_A2, REG_A3 = 4, 5, 6, 7   #: arguments
TEMP_REGS = tuple(range(8, 16))               #: t0-t7: scratch
PERSISTENT_REGS = tuple(range(16, 24))        #: s0-s7: preserved
REG_SP = 29           #: stack pointer (user-level stack for the handler)

# -- opcode groups -----------------------------------------------------------
ALU_OPS = {
    # rd, rs, rt
    "addu", "subu", "multu", "and", "or", "xor", "nor", "sltu",
    "sllv", "srlv",
}
ALU_IMM_OPS = {
    # rd, rs, imm
    "addiu", "andi", "ori", "xori", "sltiu", "sll", "srl",
}
LOAD_OPS = {"ld8", "ld16", "ld32"}     # rd, rs(base), imm(offset)
STORE_OPS = {"st8", "st16", "st32"}    # rt(value), rs(base), imm(offset)
BRANCH_OPS = {"beq", "bne", "bltu", "bgeu"}  # rs, rt, label
JUMP_OPS = {"j"}                       # label
INDIRECT_OPS = {"jr"}                  # rs
CALL_OPS = {"call"}                    # name (trusted kernel entry point)
MISC_OPS = {"li", "nop", "ret", "divu"}
EXT_OPS = {"cksum32", "bswap32", "bswap16"}  # networking extensions
#: sandbox-inserted checks: rs(base), imm(offset), size/aux
CHECK_OPS = {"chkld", "chkst", "chkjmp", "chkbudget"}
#: present in the ISA, rejected by the verifier, refused by the VM
FORBIDDEN_OPS = {"add", "sub", "div", "mult", "fadd", "fmul", "fdiv", "fcvt"}

OPCODES = (
    ALU_OPS | ALU_IMM_OPS | LOAD_OPS | STORE_OPS | BRANCH_OPS | JUMP_OPS
    | INDIRECT_OPS | CALL_OPS | MISC_OPS | EXT_OPS | CHECK_OPS | FORBIDDEN_OPS
)

MASK32 = 0xFFFFFFFF


@dataclass(frozen=True)
class Insn:
    """One instruction.  Unused fields stay None."""

    op: str
    rd: Optional[int] = None
    rs: Optional[int] = None
    rt: Optional[int] = None
    imm: Optional[int] = None
    label: Optional[str] = None     #: symbolic branch target / call name
    target: Optional[int] = None    #: resolved instruction index

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise VcodeError(f"unknown opcode {self.op!r}")
        for reg in (self.rd, self.rs, self.rt):
            if reg is not None and not 0 <= reg < NUM_REGS:
                raise VcodeError(f"{self.op}: register r{reg} out of range")

    def pretty(self) -> str:
        parts = [self.op]
        regs = [f"r{r}" for r in (self.rd, self.rs, self.rt) if r is not None]
        parts.extend(regs)
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.label is not None:
            parts.append(self.label)
        return " ".join(parts)


@dataclass
class Program:
    """Assembled code: instructions + resolved labels + metadata."""

    name: str
    insns: list[Insn]
    labels: dict[str, int] = field(default_factory=dict)
    #: persistent registers the code relies on surviving between runs
    persistent_regs: tuple[int, ...] = ()
    sandboxed: bool = False
    #: pre-sandbox label address -> post-sandbox address; installed by the
    #: rewriter so ``chkjmp`` can translate indirect-jump targets ("if they
    #: are to code named by the pre-sandboxed address then they are
    #: translated and allowed to proceed").
    jump_map: Optional[dict[int, int]] = None
    #: tri-state JIT verdict: None = unknown, True = verified/translated,
    #: False = translation failed (the VM then sticks to the interpreter).
    #: The sandbox verifier stamps this at download time.
    jit_safe: Optional[bool] = None

    def __len__(self) -> int:
        return len(self.insns)

    @cached_property
    def forbidden_pcs(self) -> tuple[int, ...]:
        """Indices of forbidden (signed/FP) instructions, scanned once.

        Both engines share this gate: the interpreter skips its
        per-instruction forbidden check when the scan comes back empty,
        and the JIT emits inline traps only at these pcs.  Valid because
        a Program's instruction list is fixed after :func:`assemble`.
        """
        return tuple(
            pc for pc, insn in enumerate(self.insns)
            if insn.op in FORBIDDEN_OPS
        )

    def disassemble(self) -> str:
        index_to_labels: dict[int, list[str]] = {}
        for label, idx in self.labels.items():
            index_to_labels.setdefault(idx, []).append(label)
        lines = []
        for i, insn in enumerate(self.insns):
            for label in index_to_labels.get(i, []):
                lines.append(f"{label}:")
            lines.append(f"  {i:4d}  {insn.pretty()}")
        return "\n".join(lines)


def assemble(name: str, items: list, persistent_regs: tuple[int, ...] = ()) -> Program:
    """Resolve labels in a mixed list of Insn and ``("label", name)`` marks.

    Labels may appear at the very end of the program (a branch there
    falls off the end, i.e. returns).
    """
    labels: dict[str, int] = {}
    insns: list[Insn] = []
    for item in items:
        if isinstance(item, tuple) and len(item) == 2 and item[0] == "label":
            label = item[1]
            if label in labels:
                raise VcodeError(f"{name}: duplicate label {label!r}")
            labels[label] = len(insns)
        elif isinstance(item, Insn):
            insns.append(item)
        else:
            raise VcodeError(f"{name}: bad program item {item!r}")
    resolved: list[Insn] = []
    for insn in insns:
        if insn.op in BRANCH_OPS or insn.op in JUMP_OPS:
            if insn.label not in labels:
                raise VcodeError(f"{name}: undefined label {insn.label!r}")
            resolved.append(replace(insn, target=labels[insn.label]))
        else:
            resolved.append(insn)
    return Program(name=name, insns=resolved, labels=labels,
                   persistent_regs=tuple(persistent_regs))


def insn_cost(insn: Insn, cal: Calibration) -> int:
    """Base cycle cost of an instruction (before cache stalls).

    Single-cycle RISC baseline; multi-cycle operations follow the R3000:
    ``multu`` ~12 cycles, ``divu`` ~35 cycles.  The networking
    extensions take the costs Section II-B implies (checksum uses the
    add-with-carry idiom; MIPS has no byte-swap instruction so a swap is
    a shift/mask sequence).  Sandbox checks cost what the calibration
    says a software check costs.
    """
    op = insn.op
    if op == "cksum32":
        return cal.cksum32_cycles
    if op == "bswap32":
        return cal.bswap32_cycles
    if op == "bswap16":
        return cal.bswap16_cycles
    if op in ("chkld", "chkst"):
        return cal.sandbox_check_cycles
    if op == "chkjmp":
        return cal.sandbox_jump_check_cycles
    if op == "chkbudget":
        return cal.sandbox_check_cycles
    if op == "multu":
        return 12
    if op == "divu":
        return 35
    return cal.insn_cycles
