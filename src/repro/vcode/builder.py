"""The VCODE builder: the ``v_*`` macro interface handlers are written in.

Mirrors the paper's C-macro interface in Python: each ``v_*`` call
appends one instruction, ``label()``/``mark()`` manage control-flow
targets, and ``getreg``/``putreg`` allocate registers in the paper's
two classes.  ``finish()`` assembles the fragment into an executable
:class:`~repro.vcode.isa.Program`.

Example — the remote-increment core::

    b = VBuilder("remote_increment")
    ptr = b.getreg()
    b.v_ld32(ptr, b.A0, 0)      # fetch target address from the message
    val = b.getreg()
    b.v_ld32(val, ptr, 0)       # load the counter
    b.v_addiu(val, val, 1)      # increment
    b.v_st32(val, ptr, 0)       # store back
    b.v_ret()
    program = b.finish()
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import VcodeError
from .isa import (
    Insn,
    Program,
    REG_A0,
    REG_A1,
    REG_A2,
    REG_A3,
    REG_SP,
    REG_V0,
    REG_ZERO,
    assemble,
)
from .registers import P_TMP, P_VAR, RegisterAllocator

__all__ = ["Label", "VBuilder"]


class Label:
    """A control-flow target; create with :meth:`VBuilder.label`."""

    _counter = 0

    def __init__(self, name: Optional[str] = None):
        if name is None:
            Label._counter += 1
            name = f"L{Label._counter}"
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Label {self.name}>"


LabelLike = Union[Label, str]


def _label_name(label: LabelLike) -> str:
    return label.name if isinstance(label, Label) else label


class VBuilder:
    """Accumulates instructions for one VCODE fragment."""

    # argument/return register conventions, exposed for handler authors
    A0, A1, A2, A3 = REG_A0, REG_A1, REG_A2, REG_A3
    V0 = REG_V0
    ZERO = REG_ZERO
    SP = REG_SP

    def __init__(self, name: str = "fragment"):
        self.name = name
        self.items: list = []
        self.regs = RegisterAllocator()

    # -- registers -----------------------------------------------------------
    def getreg(self, reg_class: str = P_TMP) -> int:
        """Allocate a register (``P_TMP`` scratch or ``P_VAR`` persistent)."""
        return self.regs.alloc(reg_class)

    def putreg(self, reg: int) -> None:
        self.regs.free(reg)

    # -- labels -----------------------------------------------------------
    def label(self, name: Optional[str] = None) -> Label:
        return Label(name)

    def mark(self, label: LabelLike) -> None:
        """Place ``label`` at the current position."""
        self.items.append(("label", _label_name(label)))

    # -- emission core -----------------------------------------------------
    def emit(self, insn: Insn) -> None:
        self.items.append(insn)

    def _i(self, op: str, **kwargs) -> None:
        self.emit(Insn(op, **kwargs))

    # -- ALU -----------------------------------------------------------------
    def v_addu(self, rd: int, rs: int, rt: int) -> None:
        self._i("addu", rd=rd, rs=rs, rt=rt)

    def v_subu(self, rd: int, rs: int, rt: int) -> None:
        self._i("subu", rd=rd, rs=rs, rt=rt)

    def v_multu(self, rd: int, rs: int, rt: int) -> None:
        self._i("multu", rd=rd, rs=rs, rt=rt)

    def v_divu(self, rd: int, rs: int, rt: int) -> None:
        self._i("divu", rd=rd, rs=rs, rt=rt)

    def v_and(self, rd: int, rs: int, rt: int) -> None:
        self._i("and", rd=rd, rs=rs, rt=rt)

    def v_or(self, rd: int, rs: int, rt: int) -> None:
        self._i("or", rd=rd, rs=rs, rt=rt)

    def v_xor(self, rd: int, rs: int, rt: int) -> None:
        self._i("xor", rd=rd, rs=rs, rt=rt)

    def v_nor(self, rd: int, rs: int, rt: int) -> None:
        self._i("nor", rd=rd, rs=rs, rt=rt)

    def v_sltu(self, rd: int, rs: int, rt: int) -> None:
        self._i("sltu", rd=rd, rs=rs, rt=rt)

    def v_sllv(self, rd: int, rs: int, rt: int) -> None:
        self._i("sllv", rd=rd, rs=rs, rt=rt)

    def v_srlv(self, rd: int, rs: int, rt: int) -> None:
        self._i("srlv", rd=rd, rs=rs, rt=rt)

    # -- ALU immediate ----------------------------------------------------------
    def v_addiu(self, rd: int, rs: int, imm: int) -> None:
        self._i("addiu", rd=rd, rs=rs, imm=imm)

    def v_andi(self, rd: int, rs: int, imm: int) -> None:
        self._i("andi", rd=rd, rs=rs, imm=imm)

    def v_ori(self, rd: int, rs: int, imm: int) -> None:
        self._i("ori", rd=rd, rs=rs, imm=imm)

    def v_xori(self, rd: int, rs: int, imm: int) -> None:
        self._i("xori", rd=rd, rs=rs, imm=imm)

    def v_sltiu(self, rd: int, rs: int, imm: int) -> None:
        self._i("sltiu", rd=rd, rs=rs, imm=imm)

    def v_sll(self, rd: int, rs: int, imm: int) -> None:
        self._i("sll", rd=rd, rs=rs, imm=imm)

    def v_srl(self, rd: int, rs: int, imm: int) -> None:
        self._i("srl", rd=rd, rs=rs, imm=imm)

    # -- pseudo-ops ---------------------------------------------------------
    def v_li(self, rd: int, imm: int) -> None:
        self._i("li", rd=rd, imm=imm)

    def v_move(self, rd: int, rs: int) -> None:
        self._i("addu", rd=rd, rs=rs, rt=REG_ZERO)

    def v_nop(self) -> None:
        self._i("nop")

    # -- memory ---------------------------------------------------------------
    def v_ld8(self, rd: int, base: int, offset: int = 0) -> None:
        self._i("ld8", rd=rd, rs=base, imm=offset)

    def v_ld16(self, rd: int, base: int, offset: int = 0) -> None:
        self._i("ld16", rd=rd, rs=base, imm=offset)

    def v_ld32(self, rd: int, base: int, offset: int = 0) -> None:
        self._i("ld32", rd=rd, rs=base, imm=offset)

    def v_st8(self, rt: int, base: int, offset: int = 0) -> None:
        self._i("st8", rt=rt, rs=base, imm=offset)

    def v_st16(self, rt: int, base: int, offset: int = 0) -> None:
        self._i("st16", rt=rt, rs=base, imm=offset)

    def v_st32(self, rt: int, base: int, offset: int = 0) -> None:
        self._i("st32", rt=rt, rs=base, imm=offset)

    # -- control flow --------------------------------------------------------
    def v_beq(self, rs: int, rt: int, label: LabelLike) -> None:
        self._i("beq", rs=rs, rt=rt, label=_label_name(label))

    def v_bne(self, rs: int, rt: int, label: LabelLike) -> None:
        self._i("bne", rs=rs, rt=rt, label=_label_name(label))

    def v_bltu(self, rs: int, rt: int, label: LabelLike) -> None:
        self._i("bltu", rs=rs, rt=rt, label=_label_name(label))

    def v_bgeu(self, rs: int, rt: int, label: LabelLike) -> None:
        self._i("bgeu", rs=rs, rt=rt, label=_label_name(label))

    def v_j(self, label: LabelLike) -> None:
        self._i("j", label=_label_name(label))

    def v_jr(self, rs: int) -> None:
        self._i("jr", rs=rs)

    def v_call(self, name: str) -> None:
        """Call a trusted kernel entry point (args in A0-A3, result in V0)."""
        self._i("call", label=name)

    def v_ret(self) -> None:
        self._i("ret")

    # -- networking extensions (Section II-B) ----------------------------------
    def v_cksum32(self, acc: int, src: int) -> None:
        """acc += src with end-around carry (Internet checksum step)."""
        self._i("cksum32", rd=acc, rs=src)

    def v_bswap32(self, rd: int, rs: int) -> None:
        self._i("bswap32", rd=rd, rs=rs)

    def v_bswap16(self, rd: int, rs: int) -> None:
        self._i("bswap16", rd=rd, rs=rs)

    # -- forbidden ops (for verifier tests and hostile handlers) ---------------
    def v_unsafe(self, op: str, rd: int = 0, rs: int = 0, rt: int = 0) -> None:
        """Emit a signed/FP instruction the verifier must reject."""
        self._i(op, rd=rd, rs=rs, rt=rt)

    # -- assembly ----------------------------------------------------------
    def finish(self) -> Program:
        return assemble(
            self.name, self.items,
            persistent_regs=self.regs.persistent_registers(),
        )
