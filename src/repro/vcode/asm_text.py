"""A textual VCODE assembler: the inverse of ``Program.disassemble``.

Handlers in this reproduction are normally built through the
:class:`~repro.vcode.builder.VBuilder` macro API (as the paper's were
built through C macros), but a textual form is handy for tests, tools
and documentation.  The accepted grammar is exactly what
``Program.disassemble`` prints:

    label:
        opcode [rD] [rS] [rT] [#imm] [label]
    ; or # start a comment; the leading index column is optional

Example::

    prog = parse_asm('''
        ; sum the first two message words
            ld32 r8 r4 #0
            ld32 r9 r4 #4
            addu r2 r8 r9
            ret
    ''', name="sum2")
"""

from __future__ import annotations

import re

from ..errors import VcodeError
from .isa import (
    ALU_IMM_OPS,
    ALU_OPS,
    BRANCH_OPS,
    CALL_OPS,
    CHECK_OPS,
    FORBIDDEN_OPS,
    Insn,
    JUMP_OPS,
    LOAD_OPS,
    OPCODES,
    Program,
    STORE_OPS,
    assemble,
)

__all__ = ["parse_asm"]

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$-]*):$")
_REG_RE = re.compile(r"^r(\d+)$")
_IMM_RE = re.compile(r"^#(-?(?:0x[0-9a-fA-F]+|\d+))$")
_INDEX_RE = re.compile(r"^\d+$")


def _imm_value(token: str) -> int:
    body = token[1:]
    return int(body, 0)


def _parse_operands(tokens: list[str]):
    regs: list[int] = []
    imm = None
    label = None
    for token in tokens:
        m = _REG_RE.match(token)
        if m:
            regs.append(int(m.group(1)))
            continue
        if _IMM_RE.match(token):
            if imm is not None:
                raise VcodeError(f"duplicate immediate in {tokens!r}")
            imm = _imm_value(token)
            continue
        if label is not None:
            raise VcodeError(f"unexpected operand {token!r}")
        label = token
    return regs, imm, label


def _build_insn(op: str, regs: list[int], imm, label) -> Insn:
    if op in ALU_OPS or op in FORBIDDEN_OPS or op == "divu":
        if len(regs) == 3:
            return Insn(op, rd=regs[0], rs=regs[1], rt=regs[2])
        if op in FORBIDDEN_OPS and len(regs) == 0:
            return Insn(op)
        raise VcodeError(f"{op}: expected 3 registers, got {regs}")
    if op in ALU_IMM_OPS:
        if len(regs) != 2 or imm is None:
            raise VcodeError(f"{op}: expected rD rS #imm")
        return Insn(op, rd=regs[0], rs=regs[1], imm=imm)
    if op in LOAD_OPS:
        if len(regs) != 2:
            raise VcodeError(f"{op}: expected rD rBase [#off]")
        return Insn(op, rd=regs[0], rs=regs[1], imm=imm or 0)
    if op in STORE_OPS:
        # disassembly operand order: base register first, value second
        # (Insn.pretty prints rs before rt)
        if len(regs) != 2:
            raise VcodeError(f"{op}: expected rBase rVal [#off]")
        return Insn(op, rs=regs[0], rt=regs[1], imm=imm or 0)
    if op in BRANCH_OPS:
        if len(regs) != 2 or label is None:
            raise VcodeError(f"{op}: expected rS rT label")
        return Insn(op, rs=regs[0], rt=regs[1], label=label)
    if op in JUMP_OPS:
        if label is None:
            raise VcodeError(f"{op}: expected a label")
        return Insn(op, label=label)
    if op == "jr":
        if len(regs) != 1:
            raise VcodeError("jr: expected one register")
        return Insn(op, rs=regs[0])
    if op in CALL_OPS:
        if label is None:
            raise VcodeError("call: expected an entry-point name")
        return Insn(op, label=label)
    if op == "li":
        if len(regs) != 1 or imm is None:
            raise VcodeError("li: expected rD #imm")
        return Insn(op, rd=regs[0], imm=imm)
    if op in ("nop", "ret"):
        return Insn(op)
    if op in ("cksum32", "bswap32", "bswap16"):
        if len(regs) != 2:
            raise VcodeError(f"{op}: expected rD rS")
        return Insn(op, rd=regs[0], rs=regs[1])
    if op in CHECK_OPS:
        if op in ("chkld", "chkst"):
            if len(regs) < 1:
                raise VcodeError(f"{op}: expected a base register")
            size = regs[1] if len(regs) > 1 else 4
            return Insn(op, rs=regs[0], imm=imm or 0, rt=size)
        if op == "chkjmp":
            if len(regs) != 1:
                raise VcodeError("chkjmp: expected one register")
            return Insn(op, rs=regs[0])
        return Insn(op)
    raise VcodeError(f"unknown opcode {op!r}")  # pragma: no cover


def parse_asm(text: str, name: str = "asm") -> Program:
    """Assemble the textual form into an executable :class:`Program`."""
    items: list = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].split("//", 1)[0].strip()
        if not line:
            continue
        m = _LABEL_RE.match(line)
        if m:
            items.append(("label", m.group(1)))
            continue
        tokens = line.split()
        # drop the optional leading index column that disassemble prints
        if _INDEX_RE.match(tokens[0]) and len(tokens) > 1:
            tokens = tokens[1:]
        op = tokens[0]
        if op not in OPCODES:
            raise VcodeError(f"line {lineno}: unknown opcode {op!r}")
        try:
            regs, imm, label = _parse_operands(tokens[1:])
            items.append(_build_insn(op, regs, imm, label))
        except VcodeError as exc:
            raise VcodeError(f"line {lineno}: {exc}") from None
    return assemble(name, items)
