"""Register allocation for VCODE fragments.

The paper (Section II-B): "pipes are charged with allocating those
registers they need and choosing the appropriate register class.  The
two available register classes are *temporary* and *persistent*.
Temporary registers are scratch registers that are not saved across
pipe invocations.  Persistent registers are saved across pipe
invocations ... The values of persistent registers can be imported and
exported from the main protocol code."
"""

from __future__ import annotations

from ..errors import VcodeError
from .isa import PERSISTENT_REGS, TEMP_REGS

__all__ = ["P_TMP", "P_VAR", "RegisterAllocator"]

#: register class constants, named after the paper's P_TMP / P_VAR usage
P_TMP = "temporary"
P_VAR = "persistent"


class RegisterAllocator:
    """Hands out registers from the two classes; supports free/reset."""

    def __init__(self) -> None:
        self._free_temp = list(TEMP_REGS)
        self._free_persistent = list(PERSISTENT_REGS)
        self._allocated: dict[int, str] = {}

    def alloc(self, reg_class: str = P_TMP) -> int:
        """Allocate one register of the requested class."""
        if reg_class == P_TMP:
            pool = self._free_temp
        elif reg_class == P_VAR:
            pool = self._free_persistent
        else:
            raise VcodeError(f"unknown register class {reg_class!r}")
        if not pool:
            raise VcodeError(f"out of {reg_class} registers")
        reg = pool.pop(0)
        self._allocated[reg] = reg_class
        return reg

    def free(self, reg: int) -> None:
        reg_class = self._allocated.pop(reg, None)
        if reg_class is None:
            raise VcodeError(f"r{reg} was not allocated")
        if reg_class == P_TMP:
            self._free_temp.append(reg)
            self._free_temp.sort()
        else:
            self._free_persistent.append(reg)
            self._free_persistent.sort()

    def persistent_registers(self) -> tuple[int, ...]:
        """Currently-allocated persistent registers, in numeric order."""
        return tuple(sorted(
            reg for reg, cls in self._allocated.items() if cls == P_VAR
        ))

    @property
    def allocated(self) -> dict[int, str]:
        return dict(self._allocated)
