"""Networking idioms built from VCODE: loop factories and macros.

The paper: "we have extended the VCODE system to include common
networking operations ... checksumming, byteswapping, memory copies,
and unaligned memory accesses."  This module provides those idioms as
*program factories* — they emit the hand-written loops the paper's
microbenchmarks compare against (Table III's copy loops and Table IV's
"separate" and "C integrated" strategies).  The dynamically-composed
equivalents come from :mod:`repro.pipes.compiler`.

All data loops use the calling convention ``A0 = src``, ``A1 = dst``,
``A2 = length in bytes`` and require ``length % 4 == 0`` (the paper's
checksum pipe "assumes that messages are always a multiple of four
bytes long").  Checksum variants keep the 32-bit accumulator in a
persistent register and also return it in V0; fold it with
:func:`fold_checksum` (or :func:`emit_fold16` in VCODE).
"""

from __future__ import annotations

from ..errors import VcodeError
from .builder import VBuilder
from .isa import Program
from .registers import P_VAR

__all__ = [
    "build_copy",
    "build_checksum",
    "build_byteswap",
    "build_integrated",
    "emit_fold16",
    "fold_checksum",
]


def fold_checksum(acc32: int) -> int:
    """Fold a 32-bit one's-complement accumulator to 16 bits (RFC 1071)."""
    while acc32 > 0xFFFF:
        acc32 = (acc32 & 0xFFFF) + (acc32 >> 16)
    return acc32


def emit_fold16(b: VBuilder, dst: int, acc: int) -> None:
    """Emit VCODE folding the 32-bit accumulator ``acc`` into 16 bits."""
    hi = b.getreg()
    # Two folds suffice: after the first, the value is < 0x1FFFE.
    for _ in range(2):
        b.v_srl(hi, acc, 16)
        b.v_andi(dst, acc, 0xFFFF)
        b.v_addu(dst, dst, hi)
        b.v_move(acc, dst)
    b.putreg(hi)


def _word_loop(
    b: VBuilder,
    unroll: int,
    body,  # body(offset_bytes, src_reg, dst_reg) emits per-word work
) -> None:
    """Emit the canonical data loop skeleton.

    Two loops are emitted: an unrolled main loop consuming
    ``unroll * 4`` bytes per iteration and a single-word tail loop, so
    any multiple-of-4 length is handled.
    """
    if unroll < 1:
        raise VcodeError("unroll must be >= 1")
    src, dst = b.A0, b.A1
    end = b.getreg()
    b.v_addu(end, src, b.A2)           # end = src + len
    step = 4 * unroll

    if unroll > 1:
        # main_end = src + (len - len % step); computed with shifts since
        # step is a power of two in all our uses, otherwise via divu.
        main_end = b.getreg()
        rem = b.getreg()
        if step & (step - 1) == 0:
            shift = step.bit_length() - 1
            b.v_srl(rem, b.A2, shift)
            b.v_sll(rem, rem, shift)   # rem = len rounded down to step
        else:
            tmp = b.getreg()
            b.v_li(tmp, step)
            b.v_divu(rem, b.A2, tmp)
            b.v_multu(rem, rem, tmp)
            b.putreg(tmp)
        b.v_addu(main_end, src, rem)
        b.putreg(rem)

        main_loop = b.label()
        main_done = b.label()
        b.v_bgeu(src, main_end, main_done)
        b.mark(main_loop)
        for k in range(unroll):
            body(4 * k, src, dst)
        b.v_addiu(src, src, step)
        b.v_addiu(dst, dst, step)
        b.v_bltu(src, main_end, main_loop)
        b.mark(main_done)
        b.putreg(main_end)

    tail_loop = b.label()
    done = b.label()
    b.v_bgeu(src, end, done)
    b.mark(tail_loop)
    body(0, src, dst)
    b.v_addiu(src, src, 4)
    b.v_addiu(dst, dst, 4)
    b.v_bltu(src, end, tail_loop)
    b.mark(done)
    b.putreg(end)


def build_copy(unroll: int = 4, name: str = "memcpy") -> Program:
    """A (by default unrolled) word-copy loop: the tuned ``memcpy``."""
    b = VBuilder(name)
    tmp = b.getreg()

    def body(off: int, src: int, dst: int) -> None:
        b.v_ld32(tmp, src, off)
        b.v_st32(tmp, dst, off)

    _word_loop(b, unroll, body)
    b.v_ret()
    return b.finish()


def build_checksum(unroll: int = 1, name: str = "inet_cksum") -> Program:
    """The straightforward RFC 1071 checksum pass (reads src only).

    Returns the 32-bit accumulator in V0; the caller folds.  This is the
    per-word loop ordinary protocol code uses — the paper's *separate*
    strategy — as opposed to the unrolled integrated loops.
    """
    b = VBuilder(name)
    acc = b.getreg(P_VAR)
    b.v_li(acc, 0)
    tmp = b.getreg()

    def body(off: int, src: int, dst: int) -> None:
        b.v_ld32(tmp, src, off)
        b.v_cksum32(acc, tmp)

    _word_loop(b, unroll, body)
    b.v_move(b.V0, acc)
    b.v_ret()
    return b.finish()


def build_byteswap(unroll: int = 1, name: str = "bswap_pass",
                   in_place: bool = True) -> Program:
    """Byte-swap every 32-bit word (big <-> little endian)."""
    b = VBuilder(name)
    tmp = b.getreg()

    def body(off: int, src: int, dst: int) -> None:
        b.v_ld32(tmp, src, off)
        b.v_bswap32(tmp, tmp)
        b.v_st32(tmp, src if in_place else dst, off)

    _word_loop(b, unroll, body)
    b.v_ret()
    return b.finish()


def build_integrated(
    do_checksum: bool = True,
    do_byteswap: bool = False,
    unroll: int = 4,
    name: str = "integrated",
) -> Program:
    """The hand-integrated single-traversal loop ("C integrated").

    Copies src to dst while optionally checksumming (over the *input*
    data, as a transport checksum must) and byteswapping in one pass.
    V0 returns the checksum accumulator (0 if checksumming is off).
    """
    b = VBuilder(name)
    acc = b.getreg(P_VAR)
    b.v_li(acc, 0)
    tmp = b.getreg()

    def body(off: int, src: int, dst: int) -> None:
        b.v_ld32(tmp, src, off)
        if do_checksum:
            b.v_cksum32(acc, tmp)
        if do_byteswap:
            b.v_bswap32(tmp, tmp)
        b.v_st32(tmp, dst, off)

    _word_loop(b, unroll, body)
    b.v_move(b.V0, acc)
    b.v_ret()
    return b.finish()
