"""The VCODE JIT: dynamic code generation for the handler hot path.

The paper's performance story *is* dynamic code generation — DPF
"compil[es] packet filters to executable code when they are installed",
and the pipe compiler integrates pipes "encoded in a specialized data
copying loop".  This module applies the same idea to our modelled CPU
itself: instead of pushing every handler instruction through the
interpreter's ~60-arm dispatch chain, a :class:`~repro.vcode.isa.Program`
is translated once into a single ``exec``-generated Python function
(threaded code, one suite per basic block) and cached by content hash.

The translation is *specializing*:

* register accesses become Python locals (``r8``), loaded from the
  caller's register file at entry and written back at exit, around
  trusted calls, and on faults;
* instruction costs are constant-folded — a basic block charges its
  cycle sum in one ``cycles += K`` instead of per-instruction adds;
* immediates, masks, branch targets, sandbox-check sizes, the
  calibration's per-op costs and the presence of a data cache are all
  baked into the generated source;
* the forbidden-op check disappears: the translator sees every opcode
  at compile time and emits an inline trap only where a forbidden
  instruction actually occurs;
* the memory and cache *models* are inlined: a ``ld32`` becomes a
  direct-mapped tag probe (line size, set count and miss penalty are
  compile-time constants), an inline bounds check with the exact
  :class:`~repro.errors.MemoryFault` message, and a little-endian read
  of the backing ``bytearray`` — no method calls on the hot path.
  Cache hit/miss counters accumulate in locals and flush to the cache
  object at every observable exit (fault, trusted call, deopt, return).

**Bit-identical semantics.**  The JIT must produce exactly the
interpreter's :class:`~repro.vcode.vm.VmResult` — cycles, executed
count, call-log cycle offsets, fault type/message and the register file
— including the per-instruction budget/instruction-cap abort points.
Cheap per-instruction checks would forfeit the speedup, so the
generated code uses *deoptimization*: each straight-line chunk is
guarded by one conservative precheck (entry cycles + worst-case chunk
cost, where the worst case bounds every load's possible cache stalls).
If the chunk could trip the cycle budget or instruction cap, the
function writes its state back and returns a ``deopt`` record; the VM
resumes in the interpreter from that exact pc, which then reproduces
the abort (or completes) with reference semantics.  Chunks that pass
the precheck provably cannot fault on budget, so they run with no
per-instruction checks at all.

Memory faults, arithmetic faults, jump faults and trusted calls are
observable events: the generated code materializes exact ``cycles`` /
``executed`` values immediately before each one, so fault accounting
and ``call_log`` offsets match the interpreter to the cycle.

The translation also aggregates the sandbox's region checks at
initiation time, exactly as the paper's trusted calls do (III-B2): when
a run supplies a small ``allowed`` region list, the list is baked into
the generated source as constant interval tests and becomes part of the
code-cache key, so ``chkld``/``chkst`` cost a couple of compares
instead of a Python loop over tuples.

The code cache is keyed by ``(content hash, calibration, has-cache,
allowed-regions)``.
Compile cost is charged to telemetry as a deterministic proxy
(``COMPILE_CYCLES_PER_INSN`` per translated instruction) so canonical
telemetry sidecars stay byte-stable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import (
    ArithmeticFault,
    JumpFault,
    MemoryFault,
    VcodeError,
    VmFault,
)
from ..hw.calibration import Calibration
from ..hw.memory import _ALIGN as _MEM_BASE
from .isa import (
    ALU_OPS,
    ALU_IMM_OPS,
    BRANCH_OPS,
    FORBIDDEN_OPS,
    LOAD_OPS,
    STORE_OPS,
    Insn,
    Program,
    insn_cost,
)

__all__ = [
    "CompiledProgram",
    "JitError",
    "clear_code_cache",
    "code_cache_size",
    "get_compiled",
    "program_fingerprint",
    "stats",
    "COMPILE_CYCLES_PER_INSN",
]

MASK32 = 0xFFFFFFFF
_INF_BUDGET = 0x7FFFFFFFFFFFFFFF

#: deterministic modelled cost of translating one VCODE instruction,
#: charged to the ``vcode.jit.compile_cycles`` counter (a proxy for the
#: real, wall-clock codegen cost, which must not leak into deterministic
#: telemetry snapshots).
COMPILE_CYCLES_PER_INSN = 10

#: region lists longer than this are not baked into the code (one
#: compiled specialization per distinct list would stop paying off)
MAX_BAKED_REGIONS = 8

_ACCESS_SIZE = {"ld8": 1, "ld16": 2, "ld32": 4, "st8": 1, "st16": 2, "st32": 4}


class JitError(VcodeError):
    """Translation failed (the VM falls back to the interpreter)."""


@dataclass
class JitStats:
    """Process-wide code-cache accounting (see also the telemetry
    counters ``vcode.jit.cache_hits`` / ``cache_misses`` / ``deopts``)."""

    hits: int = 0
    misses: int = 0
    failures: int = 0
    deopts: int = 0
    insns_compiled: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.failures = 0
        self.deopts = self.insns_compiled = 0


#: module-wide stats; reset via ``stats.reset()`` (benchmarks do)
stats = JitStats()

#: (fingerprint, calibration, has_cache) -> CompiledProgram
_CODE_CACHE: dict[tuple, "CompiledProgram"] = {}

#: bumped by :func:`clear_code_cache` so per-Program lookup memos (which
#: the global clear cannot reach) invalidate themselves
_cache_epoch = 0


class CompiledProgram:
    """One translated program: the entry function plus metadata.

    ``fn(vm, regs, env, cycle_budget, allowed, max_insns, call_log)``
    returns ``(0, value, cycles, executed)`` on completion or
    ``(1, pc, cycles, executed)`` to request interpreter resumption
    (deoptimization) from ``pc`` with the given accounting state.
    """

    __slots__ = ("fn", "fingerprint", "n_insns", "n_blocks", "source")

    def __init__(self, fn: Callable, fingerprint: str, n_insns: int,
                 n_blocks: int, source: str):
        self.fn = fn
        self.fingerprint = fingerprint
        self.n_insns = n_insns
        self.n_blocks = n_blocks
        self.source = source


# ---------------------------------------------------------------------------
# cache management
# ---------------------------------------------------------------------------

def program_fingerprint(program: Program) -> str:
    """Content hash of everything the translation depends on."""
    cached = program.__dict__.get("_jit_fingerprint")
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(program.name.encode())
    h.update(b"|%d" % int(program.sandboxed))
    if program.jump_map is not None:
        h.update(repr(sorted(program.jump_map.items())).encode())
    for insn in program.insns:
        h.update(
            f"|{insn.op},{insn.rd},{insn.rs},{insn.rt},"
            f"{insn.imm},{insn.label},{insn.target}".encode()
        )
    fp = h.hexdigest()
    program.__dict__["_jit_fingerprint"] = fp
    return fp


def clear_code_cache() -> None:
    """Drop every compiled program (cold-cache benchmarking)."""
    global _cache_epoch
    _CODE_CACHE.clear()
    _cache_epoch += 1


def code_cache_size() -> int:
    return len(_CODE_CACHE)


_UNSEEN = object()


def _allowed_key(program: Program, allowed) -> Optional[tuple]:
    """The allowed-region component of the code-cache key.

    Region checks are baked into the generated source (the paper's
    aggregated initiation-time checks), so programs containing
    ``chkld``/``chkst`` specialize per region list.  None means "keep
    the generic runtime loop" (no chk ops, or an oversized list).

    Specialization is *monomorphic*: the first region list a program
    runs with is baked; if a later run supplies a different list (the
    ASH receive path allows a fresh message buffer per packet), the
    program permanently falls back to the generic loop — otherwise
    every packet would force a fresh translation."""
    uses_chk = program.__dict__.get("_jit_uses_chk")
    if uses_chk is None:
        uses_chk = any(i.op in ("chkld", "chkst") for i in program.insns)
        program.__dict__["_jit_uses_chk"] = uses_chk
    if not uses_chk or allowed is None or len(allowed) > MAX_BAKED_REGIONS:
        return None
    seen = program.__dict__.get("_jit_seen_allowed", _UNSEEN)
    if seen is None:  # already went polymorphic
        return None
    ak = tuple(allowed)
    if seen is _UNSEEN:
        program.__dict__["_jit_seen_allowed"] = ak
        return ak
    if seen != ak:
        program.__dict__["_jit_seen_allowed"] = None  # polymorphic
        return None
    return seen


def get_compiled(
    program: Program,
    cal: Calibration,
    has_cache: bool,
    telemetry=None,
    allowed=None,
) -> Optional[CompiledProgram]:
    """Look up or translate ``program``; None if translation failed."""
    ak = _allowed_key(program, allowed)
    # Fast path: a per-Program memo avoids hashing the fingerprint and
    # the (40-field, dataclass-hashed) Calibration on every invocation.
    # Guarded by calibration identity and the cache epoch so it can
    # never outlive a clear_code_cache() or a different calibration.
    memo = program.__dict__.get("_jit_memo")
    if memo is not None:
        entry = memo.get((has_cache, ak))
        if entry is not None and entry[0] is cal and entry[2] == _cache_epoch:
            stats.hits += 1
            if telemetry is not None and telemetry.enabled:
                telemetry.counter("vcode.jit.cache_hits").inc()
            return entry[1]
    fp = program_fingerprint(program)
    key = (fp, cal, has_cache, ak)
    compiled = _CODE_CACHE.get(key)
    tel_on = telemetry is not None and telemetry.enabled
    if compiled is not None:
        stats.hits += 1
        if tel_on:
            telemetry.counter("vcode.jit.cache_hits").inc()
        program.__dict__.setdefault("_jit_memo", {})[(has_cache, ak)] = (
            cal, compiled, _cache_epoch
        )
        return compiled
    stats.misses += 1
    if tel_on:
        telemetry.counter("vcode.jit.cache_misses").inc()
    try:
        compiled = _translate(program, cal, has_cache, fp, ak)
    except Exception:
        stats.failures += 1
        program.jit_safe = False  # don't retry a failing translation
        return None
    stats.insns_compiled += compiled.n_insns
    if tel_on:
        telemetry.counter("vcode.jit.compile_cycles").inc(
            COMPILE_CYCLES_PER_INSN * compiled.n_insns
        )
    _CODE_CACHE[key] = compiled
    program.__dict__.setdefault("_jit_memo", {})[(has_cache, ak)] = (
        cal, compiled, _cache_epoch
    )
    program.jit_safe = True
    return compiled


# ---------------------------------------------------------------------------
# translation
# ---------------------------------------------------------------------------

def _register_fields(insn: Insn) -> tuple[list[int], list[int]]:
    """(read registers, written registers) of one instruction.

    ``chkld``/``chkst`` carry the access *size* in ``rt`` — not a
    register — which is why this cannot just scan the rd/rs/rt fields.
    """
    op = insn.op
    reads: list[int] = []
    writes: list[int] = []
    if op in ALU_OPS or op == "divu":
        reads += [insn.rs, insn.rt]
        writes.append(insn.rd)
    elif op in ALU_IMM_OPS:
        reads.append(insn.rs)
        writes.append(insn.rd)
    elif op == "li":
        writes.append(insn.rd)
    elif op in LOAD_OPS:
        reads.append(insn.rs)
        writes.append(insn.rd)
    elif op in STORE_OPS:
        reads += [insn.rs, insn.rt]
    elif op in BRANCH_OPS:
        reads += [insn.rs, insn.rt]
    elif op in ("jr", "chkjmp"):
        reads.append(insn.rs)
        if op == "chkjmp":
            writes.append(insn.rs)  # jump-map translation rewrites rs
    elif op in ("chkld", "chkst"):
        reads.append(insn.rs)
    elif op == "cksum32":
        reads += [insn.rd, insn.rs]
        writes.append(insn.rd)
    elif op in ("bswap32", "bswap16"):
        reads.append(insn.rs)
        writes.append(insn.rd)
    # nop/ret/j/call/chkbudget/forbidden: no direct register operands
    return ([r for r in reads if r is not None],
            [r for r in writes if r is not None])


def _leaders(program: Program) -> list[int]:
    """Basic-block leader pcs (always includes 0 and len(program))."""
    nprog = len(program.insns)
    leaders = {0, nprog}
    for pc, insn in enumerate(program.insns):
        op = insn.op
        if op in BRANCH_OPS or op == "j":
            if insn.target is not None:
                leaders.add(insn.target)
            leaders.add(pc + 1)
        elif op in ("jr", "ret"):
            leaders.add(pc + 1)
    # any label is a potential indirect-jump target; jump-map values are
    # what sandboxed chkjmp+jr pairs actually land on
    leaders.update(program.labels.values())
    if program.jump_map is not None:
        leaders.update(program.jump_map.values())
    return sorted(x for x in leaders if 0 <= x <= nprog)


def _max_lines_touched(size: int, line: int) -> int:
    """Upper bound on cache lines a ``size``-byte access can span."""
    return (size - 2) // line + 2 if size > 1 else 1


class _Emitter:
    """Source assembly helper with indent tracking."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def w(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _translate(program: Program, cal: Calibration, has_cache: bool,
               fingerprint: str,
               allowed_key: Optional[tuple] = None) -> CompiledProgram:
    insns = program.insns
    nprog = len(insns)
    name = program.name

    # -- analysis ----------------------------------------------------------
    used_regs: set[int] = set()
    used_ops: set[str] = set()
    for insn in insns:
        reads, writes = _register_fields(insn)
        used_regs.update(reads)
        used_regs.update(writes)
        used_ops.add(insn.op)
    has_call = "call" in used_ops
    if has_call:
        used_regs.add(2)  # V0 receives trusted-call return values
    used_regs.discard(0)  # the zero register folds to the literal 0
    regs_sorted = sorted(used_regs)

    leaders = _leaders(program)
    starts = [x for x in leaders if x < nprog]
    block_of = {start: bid for bid, start in enumerate(starts)}
    exit_id = len(starts)
    leader_map = dict(block_of)
    leader_map[nprog] = exit_id

    def R(reg: Optional[int]) -> str:
        return "0" if not reg else f"r{reg}"

    def W(reg: Optional[int]) -> str:
        return "_" if not reg else f"r{reg}"

    uses_mem = bool(used_ops & (LOAD_OPS | STORE_OPS))
    # cache-model constants, baked into the generated source
    cline = cal.cache_line
    cnlines = cal.cache_size // cal.cache_line
    cmiss = cal.miss_penalty_cycles
    cinstall = cal.store_installs_line
    inline_cache = has_cache and uses_mem
    # an access wider than a line can span >2 lines; keep the model call
    need_cl = has_cache and any(
        _ACCESS_SIZE[op] > cline for op in used_ops & LOAD_OPS
    )
    need_cs = has_cache and any(
        _ACCESS_SIZE[op] > cline for op in used_ops & STORE_OPS
    )

    e = _Emitter()
    w = e.w
    w(0, "def _jit_entry(vm, regs, env, cycle_budget, allowed, max_insns,"
         " call_log):")
    if uses_mem:
        w(1, "mem = vm.memory")
        w(1, "_mdata = mem.data")
        w(1, "_msize = mem.size")
    if "ld32" in used_ops:
        w(1, "_ifb = int.from_bytes")
    if inline_cache:
        w(1, "_cache = vm.cache")
        w(1, "_tags = _cache._tags")
        w(1, "_chit = 0")
        w(1, "_cmiss = 0")
    if need_cl:
        w(1, "_cl = _cache.load")
    if need_cs:
        w(1, "_cs = _cache.store")
    w(1, f"_bud = cycle_budget if cycle_budget is not None else {_INF_BUDGET}")
    w(1, "cycles = 0")
    w(1, "executed = 0")
    if has_call:
        w(1, "_incall = False")
    for reg in regs_sorted:
        w(1, f"r{reg} = regs[{reg}]")

    writeback = [f"regs[{reg}] = r{reg}" for reg in regs_sorted]
    reload_ = [f"r{reg} = regs[{reg}]" for reg in regs_sorted]

    w(1, "try:")
    w(2, "_b = 0")
    w(2, "while True:")

    # pending constant-folded accounting, flushed at observable points
    pend = {"c": 0, "e": 0}

    def flush(ind: int) -> None:
        if pend["c"]:
            w(ind, f"cycles += {pend['c']}")
        if pend["e"]:
            w(ind, f"executed += {pend['e']}")
        pend["c"] = pend["e"] = 0

    def pend_now(ind: int) -> None:
        """Materialize pending accounting on a fault branch (which
        raises, so the fall-through path keeps accumulating).  Cycle
        totals only need to be exact at observable points; deferring
        the adds keeps them off the hot path."""
        if pend["c"]:
            w(ind, f"cycles += {pend['c']}")
        if pend["e"]:
            w(ind, f"executed += {pend['e']}")

    def emit_writeback(ind: int) -> None:
        for line in writeback:
            w(ind, line)

    def emit_cache_flush(ind: int) -> None:
        """Publish locally-accumulated hit/miss counts to the cache
        object (before anything observable can read or replace them)."""
        if not inline_cache:
            return
        w(ind, "_cache.hits += _chit")
        w(ind, "_cache.misses += _cmiss")
        w(ind, "_chit = 0")
        w(ind, "_cmiss = 0")

    def emit_cache_touch(ind: int, size: int, is_store: bool) -> None:
        """Inline DirectMappedCache.touch_range for an access at ``_a``.

        A ``size``-byte access with ``size <= line`` touches at most two
        lines, so the tag walk unrolls to one probe plus a guarded
        second; anything wider falls back to the model call.
        """
        if size > cline:
            w(ind, f"_cs(_a, {size})" if is_store
                   else f"cycles += _cl(_a, {size})")
            return
        pow2 = cline & (cline - 1) == 0 and cnlines & (cnlines - 1) == 0
        shift = cline.bit_length() - 1

        def probe(ind2: int) -> None:
            if pow2:
                w(ind2, f"_i = _la >> {shift} & {cnlines - 1}")
            else:
                w(ind2, f"_i = _la // {cline} % {cnlines}")
            w(ind2, "if _tags[_i] == _la:")
            w(ind2 + 1, "_chit += 1")
            w(ind2, "else:")
            w(ind2 + 1, "_cmiss += 1")
            if is_store:
                if cinstall:
                    w(ind2 + 1, "_tags[_i] = _la")
            else:
                w(ind2 + 1, f"cycles += {cmiss}")
                w(ind2 + 1, "_tags[_i] = _la")

        if pow2:
            w(ind, f"_la = _a & {-cline}")
        else:
            w(ind, f"_la = _a - _a % {cline}")
        probe(ind)
        if size > 1:
            if pow2:
                w(ind, f"if _a & {cline - 1} > {cline - size}:")
            else:
                w(ind, f"if _a + {size - 1} >= _la + {cline}:")
            w(ind + 1, f"_la += {cline}")
            probe(ind + 1)

    def emit_bounds(ind: int, size: int) -> None:
        """Inline PhysicalMemory._check with its exact fault message."""
        w(ind, f"if _a < {_MEM_BASE} or _a + {size} > _msize:")
        pend_now(ind + 1)
        w(ind + 1, "raise _MemoryFault('physical access out of range: ['"
                   f" + str(_a) + ', ' + str(_a + {size}) + ')')")

    def emit_addr(ind: int, rs: Optional[int], imm: Optional[int]) -> None:
        if imm:
            w(ind, f"_a = ({R(rs)} + {imm}) & {MASK32}")
        else:
            w(ind, f"_a = {R(rs)} & {MASK32}")

    def emit_precheck(ind: int, chunk_pc: int, chunk: list[Insn]) -> None:
        """One conservative budget/cap guard for a straight-line chunk."""
        worst = 0
        for insn in chunk:
            worst += insn_cost(insn, cal)
            if has_cache and insn.op in LOAD_OPS:
                worst += cal.miss_penalty_cycles * _max_lines_touched(
                    _ACCESS_SIZE[insn.op], cal.cache_line
                )
        n = len(chunk)
        w(ind, f"if cycles + {worst} > _bud or executed + {n} > max_insns:")
        emit_writeback(ind + 1)
        emit_cache_flush(ind + 1)
        w(ind + 1, f"return (1, {chunk_pc}, cycles, executed)")

    def emit_insn(ind: int, pc: int, insn: Insn) -> bool:
        """Emit one instruction; True if it unconditionally leaves the
        block (so the remaining instructions are unreachable)."""
        op = insn.op
        if op in FORBIDDEN_OPS:
            # the interpreter refuses *before* charging this instruction
            flush(ind)
            msg = f"{name}: refused forbidden instruction {op!r} at {pc}"
            w(ind, f"raise _VmFault({msg!r})")
            return True
        pend["c"] += insn_cost(insn, cal)
        pend["e"] += 1
        rd, rs, rt, imm = insn.rd, insn.rs, insn.rt, insn.imm

        if op == "addu":
            w(ind, f"{W(rd)} = ({R(rs)} + {R(rt)}) & {MASK32}")
        elif op == "addiu":
            w(ind, f"{W(rd)} = ({R(rs)} + {imm}) & {MASK32}")
        elif op == "subu":
            w(ind, f"{W(rd)} = ({R(rs)} - {R(rt)}) & {MASK32}")
        elif op == "multu":
            w(ind, f"{W(rd)} = ({R(rs)} * {R(rt)}) & {MASK32}")
        elif op == "divu":
            msg = f"{name}: divide by zero at pc={pc}"
            w(ind, f"if {R(rt)} == 0:")
            pend_now(ind + 1)
            w(ind + 1, f"raise _ArithmeticFault({msg!r})")
            w(ind, f"{W(rd)} = ({R(rs)} // {R(rt)}) & {MASK32}")
        elif op == "and":
            w(ind, f"{W(rd)} = {R(rs)} & {R(rt)}")
        elif op == "or":
            w(ind, f"{W(rd)} = {R(rs)} | {R(rt)}")
        elif op == "xor":
            w(ind, f"{W(rd)} = {R(rs)} ^ {R(rt)}")
        elif op == "nor":
            w(ind, f"{W(rd)} = ~({R(rs)} | {R(rt)}) & {MASK32}")
        elif op == "sltu":
            w(ind, f"{W(rd)} = 1 if {R(rs)} < {R(rt)} else 0")
        elif op == "sltiu":
            w(ind, f"{W(rd)} = 1 if {R(rs)} < {imm & MASK32} else 0")
        elif op == "andi":
            w(ind, f"{W(rd)} = {R(rs)} & {imm & MASK32}")
        elif op == "ori":
            w(ind, f"{W(rd)} = {R(rs)} | {imm & MASK32}")
        elif op == "xori":
            w(ind, f"{W(rd)} = {R(rs)} ^ {imm & MASK32}")
        elif op == "sll":
            w(ind, f"{W(rd)} = ({R(rs)} << {imm & 31}) & {MASK32}")
        elif op == "srl":
            w(ind, f"{W(rd)} = {R(rs)} >> {imm & 31}")
        elif op == "sllv":
            w(ind, f"{W(rd)} = ({R(rs)} << ({R(rt)} & 31)) & {MASK32}")
        elif op == "srlv":
            w(ind, f"{W(rd)} = {R(rs)} >> ({R(rt)} & 31)")
        elif op == "li":
            w(ind, f"{W(rd)} = {imm & MASK32}")
        elif op == "nop":
            pass
        elif op in LOAD_OPS:
            size = _ACCESS_SIZE[op]
            emit_addr(ind, rs, imm)
            if has_cache:
                # the interpreter charges the cache before the bounds
                # check, so a wild load still updates tags/stats
                emit_cache_touch(ind, size, is_store=False)
            emit_bounds(ind, size)
            if size == 1:
                w(ind, f"{W(rd)} = _mdata[_a]")
            elif size == 2:
                w(ind, f"{W(rd)} = _mdata[_a] | _mdata[_a + 1] << 8")
            else:
                w(ind, f"{W(rd)} = _ifb(_mdata[_a:_a + 4], 'little')")
        elif op in STORE_OPS:
            size = _ACCESS_SIZE[op]
            emit_addr(ind, rs, imm)
            if has_cache:
                emit_cache_touch(ind, size, is_store=True)
            emit_bounds(ind, size)
            if size == 1:
                w(ind, f"_mdata[_a] = {R(rt)} & 0xFF")
            elif size == 2:
                w(ind, f"_t = {R(rt)} & 0xFFFF")
                w(ind, "_mdata[_a] = _t & 0xFF")
                w(ind, "_mdata[_a + 1] = _t >> 8")
            else:
                w(ind, f"_mdata[_a:_a + 4] = "
                       f"({R(rt)} & {MASK32}).to_bytes(4, 'little')")
        elif op in BRANCH_OPS:
            flush(ind)
            cmp_ = {"beq": "==", "bne": "!=", "bltu": "<", "bgeu": ">="}[op]
            tid = leader_map[insn.target]
            w(ind, f"if {R(rs)} {cmp_} {R(rt)}:")
            if tid == exit_id:
                w(ind + 1, "break")
            else:
                w(ind + 1, f"_b = {tid}")
                w(ind + 1, "continue")
            # not taken: fall through to the next block's dispatch test
            fid = leader_map[pc + 1]
            if fid == exit_id:
                w(ind, "break")
            else:
                w(ind, f"_b = {fid}")
            return True
        elif op == "j":
            flush(ind)
            tid = leader_map[insn.target]
            if tid == exit_id:
                w(ind, "break")
            else:
                w(ind, f"_b = {tid}")
                w(ind, "continue")
            return True
        elif op == "jr":
            flush(ind)
            pre = f"{name}: indirect jump to "
            post = f" outside code (len {nprog}) at pc={pc}"
            w(ind, f"_t = {R(rs)}")
            w(ind, f"if not 0 <= _t <= {nprog}:")
            w(ind + 1, f"raise _JumpFault({pre!r} + str(_t) + {post!r})")
            w(ind, "_b = _LEADERS.get(_t, -1)")
            w(ind, "if _b < 0:")
            emit_writeback(ind + 1)
            emit_cache_flush(ind + 1)
            w(ind + 1, "return (1, _t, cycles, executed)")
            w(ind, "continue")
            return True
        elif op == "ret":
            flush(ind)
            w(ind, "break")
            return True
        elif op == "call":
            flush(ind)
            label = insn.label
            msg = (f"{name}: call to unknown trusted entry "
                   f"{label!r} at pc={pc}")
            w(ind, f"_fn = env.get({label!r})")
            w(ind, "if _fn is None:")
            w(ind + 1, f"raise _JumpFault({msg!r})")
            emit_writeback(ind)
            emit_cache_flush(ind)
            w(ind, "_incall = True")
            w(ind, "_v, _x = _fn(_TCC(vm, regs, cycles))")
            w(ind, "_incall = False")
            for line in reload_:
                w(ind, line)
            if inline_cache:
                # flush_all() now clears the tag store in place (the
                # cache keeps a numpy view over the same buffer), but a
                # re-bind is cheap and keeps us correct even if a
                # trusted entry swaps the store wholesale
                w(ind, "_tags = _cache._tags")
            w(ind, f"r2 = _v & {MASK32}")
            w(ind, "cycles += _x")
            w(ind, f"call_log.append(({label!r}, cycles, r2))")
        elif op == "cksum32":
            w(ind, f"_t = {R(rd)} + {R(rs)}")
            w(ind, f"while _t > {MASK32}:")
            w(ind + 1, f"_t = (_t & {MASK32}) + (_t >> 32)")
            w(ind, f"{W(rd)} = _t")
        elif op == "bswap32":
            v = R(rs)
            w(ind, f"{W(rd)} = ((({v}) & 0xFF) << 24) | "
                   f"((({v}) & 0xFF00) << 8) | "
                   f"((({v}) & 0xFF0000) >> 8) | "
                   f"((({v}) & 0xFF000000) >> 24)")
        elif op == "bswap16":
            w(ind, f"_t = {R(rs)} & 0xFFFF")
            w(ind, f"{W(rd)} = ((_t & 0xFF) << 8) | (_t >> 8)")
        elif op in ("chkld", "chkst"):
            size = rt if rt else 4
            pre = f"{name}: checked access to "
            post = f"+{size} outside allowed regions"
            emit_addr(ind, rs, imm)
            if allowed_key is not None:
                # the aggregated initiation-time check: the region list
                # is part of the code-cache key, so each interval test
                # is a chained compare against two constants
                tests = " or ".join(
                    f"{base} <= _a <= {base + rsize - size}"
                    for base, rsize in allowed_key
                    if rsize >= size
                )
                if tests:
                    w(ind, f"if not ({tests}):")
                else:
                    w(ind, "if True:")
                pend_now(ind + 1)
                w(ind + 1, f"raise _MemoryFault({pre!r} + format(_a, '#x')"
                           f" + {post!r})")
            else:
                w(ind, "for _rb, _rz in allowed:")
                w(ind + 1, f"if _rb <= _a and _a + {size} <= _rb + _rz:")
                w(ind + 2, "break")
                w(ind, "else:")
                pend_now(ind + 1)
                w(ind + 1, f"raise _MemoryFault({pre!r} + format(_a, '#x')"
                           f" + {post!r})")
        elif op == "chkjmp":
            w(ind, f"_t = {R(rs)}")
            if program.jump_map is not None:
                pre = f"{name}: chkjmp rejected unsandboxed target "
                post = f" at pc={pc}"
                w(ind, "if _t in _JM:")
                w(ind + 1, f"{W(rs)} = _JM[_t]")
                w(ind, "else:")
                pend_now(ind + 1)
                w(ind + 1, f"raise _JumpFault({pre!r} + str(_t) + {post!r})")
            else:
                pre = f"{name}: chkjmp rejected target "
                post = f" at pc={pc}"
                w(ind, f"if not 0 <= _t <= {nprog}:")
                pend_now(ind + 1)
                w(ind + 1, f"raise _JumpFault({pre!r} + str(_t) + {post!r})")
        elif op == "chkbudget":
            pass  # cost-only probe; the budget itself is the precheck
        else:  # pragma: no cover - OPCODES is exhaustive
            raise JitError(f"unimplemented opcode {op!r}")
        return False

    # -- block bodies ------------------------------------------------------
    for bid, start in enumerate(starts):
        end = leaders[leaders.index(start) + 1]
        w(3, f"if _b == {bid}:")
        ind = 4
        closed = False
        i = start
        while i < end:
            # a chunk is straight-line code up to (and including) the
            # next trusted call — after a call, cycles are data-dependent
            # and a fresh precheck is required
            j = i
            while j < end - 1 and insns[j].op != "call":
                j += 1
            chunk = insns[i:j + 1]
            emit_precheck(ind, i, chunk)
            for pc in range(i, j + 1):
                closed = emit_insn(ind, pc, insns[pc])
                if closed:
                    break
            if closed:
                break
            i = j + 1
        if not closed:
            # falls through to the next leader
            flush(ind)
            w(ind, f"_b = {leader_map[end]}" if end < nprog else "break")
            if end < nprog and leader_map[end] != bid + 1:
                w(ind, "continue")
        assert pend["c"] == 0 and pend["e"] == 0
    w(3, f"if _b == {exit_id}:")
    w(4, "break")
    w(3, "raise _VcodeError('jit: bad dispatch target')")

    # -- fault annotation / epilogue ---------------------------------------
    w(1, "except _VmFault as exc:")
    # cache deltas are zeroed around trusted calls, so this flush is
    # safe (adds 0) even when the fault came from inside a call
    emit_cache_flush(2)
    if has_call:
        w(2, "if not _incall:")
        emit_writeback(3)
    else:
        emit_writeback(2)
    w(2, "exc.cycles = cycles")
    w(2, "exc.insns_executed = executed")
    w(2, "raise")
    emit_writeback(1)
    emit_cache_flush(1)
    w(1, "return (0, regs[2], cycles, executed)")

    source = e.source()
    from .vm import TrustedCallContext  # local: vm imports jit lazily

    namespace = {
        "_VmFault": VmFault,
        "_MemoryFault": MemoryFault,
        "_ArithmeticFault": ArithmeticFault,
        "_JumpFault": JumpFault,
        "_VcodeError": VcodeError,
        "_TCC": TrustedCallContext,
        "_JM": program.jump_map,
        "_LEADERS": leader_map,
    }
    exec(compile(source, f"<vcode-jit:{name}>", "exec"), namespace)  # noqa: S102
    return CompiledProgram(
        fn=namespace["_jit_entry"],
        fingerprint=fingerprint,
        n_insns=nprog,
        n_blocks=len(starts),
        source=source,
    )
