"""The VCODE virtual machine: executes handler code in the "kernel".

The VM is the modelled CPU running a downloaded handler's machine code.
It is where the paper's safety story becomes concrete:

* **cycle accounting** — every instruction charges its cost (plus cache
  stalls for loads) against a cycle budget; exceeding the budget raises
  :class:`~repro.errors.BudgetExceeded` (the two-clock-tick timer abort),
* **memory faults** — loads/stores outside physical memory, and checked
  accesses (``chkld``/``chkst``, inserted by the sandboxer) outside the
  handler's *allowed regions*, raise :class:`~repro.errors.MemoryFault`,
* **jump faults** — indirect jumps outside the program raise
  :class:`~repro.errors.JumpFault`,
* **prevented exceptions** — ``divu`` by zero raises
  :class:`~repro.errors.ArithmeticFault`; forbidden (signed/FP) opcodes
  are refused outright.

Execution is synchronous; the caller charges ``result.cycles`` to the
simulated CPU afterwards.  Side-effectful trusted calls are recorded in
``result.call_log`` with the cycle offset at which they happened so the
ASH runtime can time externally-visible actions (message sends)
correctly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import (
    ArithmeticFault,
    BudgetExceeded,
    JumpFault,
    MemoryFault,
    VcodeError,
    VmFault,
)
from ..hw.cache import DirectMappedCache
from ..hw.calibration import Calibration, DEFAULT
from ..hw.memory import PhysicalMemory
from .isa import (
    FORBIDDEN_OPS,
    Insn,
    NUM_REGS,
    Program,
    REG_A0,
    REG_V0,
    REG_ZERO,
    insn_cost,
)

__all__ = ["Vm", "VmResult", "TrustedCallContext", "ENGINES", "ENV_ENGINE"]

from . import jit  # noqa: E402  (jit imports vm lazily; no cycle)

MASK32 = 0xFFFFFFFF

#: hard cap on instructions for un-budgeted runs (unit tests, tools)
DEFAULT_MAX_INSNS = 50_000_000

#: valid execution engines; "jit" is the default (see README
#: "Execution engines" — both produce bit-identical VmResults)
ENGINES = ("jit", "interp")

#: environment override for the default engine
ENV_ENGINE = "REPRO_VCODE_ENGINE"


@dataclass
class TrustedCallContext:
    """What a trusted kernel call sees: the VM registers and memory."""

    vm: "Vm"
    regs: list[int]
    cycles: int     #: cycles consumed so far (at the call instruction)

    def arg(self, i: int) -> int:
        """i-th argument register (A0..A3)."""
        return self.regs[REG_A0 + i]


#: A trusted call: ctx -> (return value for V0, extra cycles to charge).
TrustedCall = Callable[[TrustedCallContext], tuple[int, int]]


@dataclass
class VmResult:
    value: int                       #: V0 at exit
    regs: list[int]
    cycles: int
    insns_executed: int
    call_log: list[tuple[str, int, int]] = field(default_factory=list)
    #: (name, cycles_at_call, return_value) per trusted call, in order


def _cksum32(acc: int, val: int) -> int:
    """One's-complement 32-bit accumulate with end-around carry."""
    total = acc + val
    while total > MASK32:
        total = (total & MASK32) + (total >> 32)
    return total


def _bswap32(v: int) -> int:
    return (
        ((v & 0x000000FF) << 24)
        | ((v & 0x0000FF00) << 8)
        | ((v & 0x00FF0000) >> 8)
        | ((v & 0xFF000000) >> 24)
    )


def _bswap16(v: int) -> int:
    v &= 0xFFFF
    return ((v & 0xFF) << 8) | (v >> 8)


class Vm:
    """Executes assembled VCODE programs (JIT by default, with a
    reference interpreter for differential testing and deopt resume)."""

    def __init__(
        self,
        memory: PhysicalMemory,
        cache: Optional[DirectMappedCache] = None,
        cal: Calibration = DEFAULT,
        engine: Optional[str] = None,
        telemetry=None,
    ):
        self.memory = memory
        self.cache = cache
        self.cal = cal
        self.engine = engine
        self.telemetry = telemetry
        # the environment default is stable for the Vm's lifetime; read
        # it once instead of hitting os.environ on every run()
        self._env_default = os.environ.get(ENV_ENGINE) or "jit"

    def _resolve_engine(self, engine: Optional[str]) -> str:
        eng = engine or self.engine or self._env_default
        if eng not in ENGINES:
            raise VcodeError(
                f"unknown execution engine {eng!r} (expected one of {ENGINES})"
            )
        return eng

    def run(
        self,
        program: Program,
        args: tuple[int, ...] = (),
        regs: Optional[list[int]] = None,
        env: Optional[dict[str, TrustedCall]] = None,
        cycle_budget: Optional[int] = None,
        allowed: Optional[list[tuple[int, int]]] = None,
        max_insns: int = DEFAULT_MAX_INSNS,
        engine: Optional[str] = None,
    ) -> VmResult:
        """Execute ``program`` and return a :class:`VmResult`.

        ``args`` load into A0..A3.  ``regs`` (if given) is the incoming
        register file — this is how persistent registers survive across
        invocations; it is mutated in place.  ``allowed`` is the region
        list the sandbox checks consult.  ``cycle_budget`` is the abort
        threshold (None = unlimited, for trusted code).

        ``engine`` picks the execution engine: ``"jit"`` (default)
        translates the program to native Python via
        :mod:`repro.vcode.jit` and caches it; ``"interp"`` is the
        reference interpreter.  Both produce bit-identical results; the
        call-site argument overrides the ``Vm(engine=...)`` setting,
        which overrides the ``REPRO_VCODE_ENGINE`` environment variable.
        """
        if len(args) > 4:
            raise VcodeError("at most 4 register arguments")
        if regs is None:
            regs = [0] * NUM_REGS
        for i, arg in enumerate(args):
            regs[REG_A0 + i] = arg & MASK32
        env = env or {}
        allowed = allowed or []
        # Normalize the hardwired zero register before dispatch: the
        # interpreter resets it after every instruction, the JIT folds it
        # to the literal 0, and both assume it starts out as 0.
        regs[REG_ZERO] = 0
        eng = engine or self.engine or self._env_default
        if eng != "jit":
            self._resolve_engine(eng)  # raises on unknown engines
        elif program.jit_safe is not False:
            compiled = jit.get_compiled(
                program, self.cal, self.cache is not None, self.telemetry,
                allowed,
            )
            if compiled is not None:
                call_log: list[tuple[str, int, int]] = []
                out = compiled.fn(
                    self, regs, env, cycle_budget, allowed, max_insns, call_log
                )
                if out[0] == 0:
                    return VmResult(
                        value=out[1],
                        regs=regs,
                        cycles=out[2],
                        insns_executed=out[3],
                        call_log=call_log,
                    )
                # Deoptimization: the compiled code could not prove the
                # next chunk stays within budget/instruction-cap (or hit
                # an indirect jump to an unknown target); resume in the
                # reference interpreter from the exact machine state so
                # faults and accounting stay bit-identical.
                jit.stats.deopts += 1
                tel = self.telemetry
                if tel is not None and tel.enabled:
                    tel.counter("vcode.jit.deopts").inc()
                return self._interp(
                    program, regs, env, cycle_budget, allowed, max_insns,
                    pc=out[1], cycles=out[2], executed=out[3],
                    call_log=call_log,
                )
        return self._interp(program, regs, env, cycle_budget, allowed, max_insns)

    def _interp(
        self,
        program: Program,
        regs: list[int],
        env: dict[str, TrustedCall],
        cycle_budget: Optional[int],
        allowed: list[tuple[int, int]],
        max_insns: int,
        pc: int = 0,
        cycles: int = 0,
        executed: int = 0,
        call_log: Optional[list[tuple[str, int, int]]] = None,
    ) -> VmResult:
        """Reference interpreter.

        The non-zero ``pc``/``cycles``/``executed``/``call_log`` entry
        points exist for JIT deoptimization: compiled code that cannot
        prove the next chunk stays within the cycle budget writes back
        its state and resumes here, mid-program.
        """
        mem = self.memory
        cache = self.cache
        cal = self.cal
        insns = program.insns
        nprog = len(insns)

        if call_log is None:
            call_log = []
        # The forbidden-op gate is invariant per program: scan once
        # (cached on the Program) and skip the per-instruction set
        # membership test entirely for clean code.
        has_forbidden = bool(program.forbidden_pcs)

        def check_range(addr: int, size: int) -> None:
            for base, rsize in allowed:
                if base <= addr and addr + size <= base + rsize:
                    return
            raise MemoryFault(
                f"{program.name}: checked access to {addr:#x}+{size} outside "
                f"allowed regions"
            )

        try:
            while pc < nprog:
                insn = insns[pc]
                op = insn.op
                if has_forbidden and op in FORBIDDEN_OPS:
                    raise VmFault(
                        f"{program.name}: refused forbidden instruction {op!r} "
                        f"at {pc}"
                    )
                cycles += insn_cost(insn, cal)
                executed += 1
                if cycle_budget is not None and cycles > cycle_budget:
                    raise BudgetExceeded(
                        f"{program.name}: exceeded cycle budget "
                        f"({cycles} > {cycle_budget}) at pc={pc}"
                    )
                if executed > max_insns:
                    raise BudgetExceeded(
                        f"{program.name}: exceeded instruction cap {max_insns}"
                    )
                next_pc = pc + 1

                if op == "addu":
                    regs[insn.rd] = (regs[insn.rs] + regs[insn.rt]) & MASK32
                elif op == "addiu":
                    regs[insn.rd] = (regs[insn.rs] + insn.imm) & MASK32
                elif op == "subu":
                    regs[insn.rd] = (regs[insn.rs] - regs[insn.rt]) & MASK32
                elif op == "multu":
                    regs[insn.rd] = (regs[insn.rs] * regs[insn.rt]) & MASK32
                elif op == "divu":
                    if regs[insn.rt] == 0:
                        raise ArithmeticFault(
                            f"{program.name}: divide by zero at pc={pc}"
                        )
                    regs[insn.rd] = (regs[insn.rs] // regs[insn.rt]) & MASK32
                elif op == "and":
                    regs[insn.rd] = regs[insn.rs] & regs[insn.rt]
                elif op == "or":
                    regs[insn.rd] = regs[insn.rs] | regs[insn.rt]
                elif op == "xor":
                    regs[insn.rd] = regs[insn.rs] ^ regs[insn.rt]
                elif op == "nor":
                    regs[insn.rd] = ~(regs[insn.rs] | regs[insn.rt]) & MASK32
                elif op == "sltu":
                    regs[insn.rd] = 1 if regs[insn.rs] < regs[insn.rt] else 0
                elif op == "sltiu":
                    regs[insn.rd] = 1 if regs[insn.rs] < (insn.imm & MASK32) else 0
                elif op == "andi":
                    regs[insn.rd] = regs[insn.rs] & (insn.imm & MASK32)
                elif op == "ori":
                    regs[insn.rd] = regs[insn.rs] | (insn.imm & MASK32)
                elif op == "xori":
                    regs[insn.rd] = regs[insn.rs] ^ (insn.imm & MASK32)
                elif op == "sll":
                    regs[insn.rd] = (regs[insn.rs] << (insn.imm & 31)) & MASK32
                elif op == "srl":
                    regs[insn.rd] = regs[insn.rs] >> (insn.imm & 31)
                elif op == "sllv":
                    regs[insn.rd] = (regs[insn.rs] << (regs[insn.rt] & 31)) & MASK32
                elif op == "srlv":
                    regs[insn.rd] = regs[insn.rs] >> (regs[insn.rt] & 31)
                elif op == "li":
                    regs[insn.rd] = insn.imm & MASK32
                elif op == "nop":
                    pass
                elif op == "ld32":
                    addr = (regs[insn.rs] + insn.imm) & MASK32
                    if cache is not None:
                        cycles += cache.load(addr, 4)
                    regs[insn.rd] = mem.load_u32(addr)
                elif op == "ld16":
                    addr = (regs[insn.rs] + insn.imm) & MASK32
                    if cache is not None:
                        cycles += cache.load(addr, 2)
                    regs[insn.rd] = mem.load_u16(addr)
                elif op == "ld8":
                    addr = (regs[insn.rs] + insn.imm) & MASK32
                    if cache is not None:
                        cycles += cache.load(addr, 1)
                    regs[insn.rd] = mem.load_u8(addr)
                elif op == "st32":
                    addr = (regs[insn.rs] + insn.imm) & MASK32
                    if cache is not None:
                        cache.store(addr, 4)
                    mem.store_u32(addr, regs[insn.rt])
                elif op == "st16":
                    addr = (regs[insn.rs] + insn.imm) & MASK32
                    if cache is not None:
                        cache.store(addr, 2)
                    mem.store_u16(addr, regs[insn.rt])
                elif op == "st8":
                    addr = (regs[insn.rs] + insn.imm) & MASK32
                    if cache is not None:
                        cache.store(addr, 1)
                    mem.store_u8(addr, regs[insn.rt])
                elif op == "beq":
                    if regs[insn.rs] == regs[insn.rt]:
                        next_pc = insn.target
                elif op == "bne":
                    if regs[insn.rs] != regs[insn.rt]:
                        next_pc = insn.target
                elif op == "bltu":
                    if regs[insn.rs] < regs[insn.rt]:
                        next_pc = insn.target
                elif op == "bgeu":
                    if regs[insn.rs] >= regs[insn.rt]:
                        next_pc = insn.target
                elif op == "j":
                    next_pc = insn.target
                elif op == "jr":
                    target = regs[insn.rs]
                    if not 0 <= target <= nprog:
                        raise JumpFault(
                            f"{program.name}: indirect jump to {target} outside "
                            f"code (len {nprog}) at pc={pc}"
                        )
                    next_pc = target
                elif op == "ret":
                    break
                elif op == "call":
                    fn = env.get(insn.label)
                    if fn is None:
                        raise JumpFault(
                            f"{program.name}: call to unknown trusted entry "
                            f"{insn.label!r} at pc={pc}"
                        )
                    ctx = TrustedCallContext(vm=self, regs=regs, cycles=cycles)
                    value, extra = fn(ctx)
                    regs[REG_V0] = value & MASK32
                    cycles += extra
                    call_log.append((insn.label, cycles, value & MASK32))
                elif op == "cksum32":
                    regs[insn.rd] = _cksum32(regs[insn.rd], regs[insn.rs])
                elif op == "bswap32":
                    regs[insn.rd] = _bswap32(regs[insn.rs])
                elif op == "bswap16":
                    regs[insn.rd] = _bswap16(regs[insn.rs])
                elif op == "chkld" or op == "chkst":
                    addr = (regs[insn.rs] + (insn.imm or 0)) & MASK32
                    size = insn.rt if insn.rt else 4
                    check_range(addr, size)
                elif op == "chkjmp":
                    target = regs[insn.rs]
                    if program.jump_map is not None:
                        # Sandboxed code computes jump targets in terms of the
                        # pre-sandbox layout; translate valid label addresses
                        # and abort on anything else.
                        if target in program.jump_map:
                            regs[insn.rs] = program.jump_map[target]
                        else:
                            raise JumpFault(
                                f"{program.name}: chkjmp rejected unsandboxed "
                                f"target {target} at pc={pc}"
                            )
                    elif not 0 <= target <= nprog:
                        raise JumpFault(
                            f"{program.name}: chkjmp rejected target {target} "
                            f"at pc={pc}"
                        )
                elif op == "chkbudget":
                    # The budget itself is enforced above on every instruction
                    # (the "timer"); this opcode models the *cost* of a pure
                    # software check at a loop back-edge.
                    pass
                else:  # pragma: no cover - OPCODES is exhaustive
                    raise VcodeError(f"unimplemented opcode {op!r}")

                regs[REG_ZERO] = 0  # hardwired
                pc = next_pc
        except VmFault as exc:
            # Attach accounting so the ASH runtime can charge the
            # cycles a faulting handler burnt before its abort.
            exc.cycles = cycles
            exc.insns_executed = executed
            raise

        return VmResult(
            value=regs[REG_V0],
            regs=regs,
            cycles=cycles,
            insns_executed=executed,
            call_log=call_log,
        )
