"""Download-time static verification of handler code.

Section III-B1: "At download time, we prevent the usage of
floating-point instructions" and signed arithmetic "may be disallowed
(as is currently done, because the C compiler that we use never
generates any signed arithmetic instructions)".  The verifier is the
first stage of ASH import: it rejects code that cannot be made safe at
all; the rewriter then handles what can be checked dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SandboxViolation
from ..vcode.isa import BRANCH_OPS, FORBIDDEN_OPS, JUMP_OPS, Program

__all__ = ["VerifyReport", "verify", "has_loops"]

#: signed integer arithmetic that *can* be converted to unsigned
CONVERTIBLE_OPS = {"add": "addu", "sub": "subu", "mult": "multu", "div": "divu"}
FLOAT_OPS = {"fadd", "fmul", "fdiv", "fcvt"}

#: a handler larger than this is rejected outright (no legitimate
#: handler approaches it; it bounds verification work)
MAX_PROGRAM_LEN = 16384


@dataclass
class VerifyReport:
    """What the verifier found (on success)."""

    program_len: int
    load_count: int = 0
    store_count: int = 0
    indirect_jump_count: int = 0
    call_names: list[str] = field(default_factory=list)
    backward_branch_pcs: list[int] = field(default_factory=list)

    @property
    def loop_free(self) -> bool:
        return not self.backward_branch_pcs


def has_loops(program: Program) -> bool:
    """True if any branch/jump targets an earlier (or same) instruction."""
    for pc, insn in enumerate(program.insns):
        if insn.op in BRANCH_OPS or insn.op in JUMP_OPS:
            if insn.target is not None and insn.target <= pc:
                return True
        if insn.op == "jr":
            return True  # an indirect jump may go backwards
    return False


def verify(program: Program, allow_convertible_signed: bool = True) -> VerifyReport:
    """Statically check ``program``; raises :class:`SandboxViolation`.

    Floating point is always fatal.  Signed integer arithmetic is fatal
    unless ``allow_convertible_signed`` (the rewriter will convert it to
    the unsigned form, which cannot raise overflow exceptions).
    """
    if len(program) > MAX_PROGRAM_LEN:
        raise SandboxViolation(
            f"{program.name}: {len(program)} instructions exceeds the "
            f"{MAX_PROGRAM_LEN}-instruction download limit"
        )
    report = VerifyReport(program_len=len(program))
    for pc, insn in enumerate(program.insns):
        op = insn.op
        if op in FLOAT_OPS:
            raise SandboxViolation(
                f"{program.name}: floating-point instruction {op!r} at "
                f"pc={pc} (ASHs are denied FP hardware)"
            )
        if op in FORBIDDEN_OPS:
            if not (allow_convertible_signed and op in CONVERTIBLE_OPS):
                raise SandboxViolation(
                    f"{program.name}: signed arithmetic {op!r} at pc={pc} "
                    f"can raise overflow exceptions"
                )
        if op.startswith("ld"):
            report.load_count += 1
        elif op.startswith("st"):
            report.store_count += 1
        elif op == "jr":
            report.indirect_jump_count += 1
        elif op == "call":
            report.call_names.append(insn.label)
        if (op in BRANCH_OPS or op in JUMP_OPS) and insn.target is not None:
            if insn.target <= pc:
                report.backward_branch_pcs.append(pc)
    # The verifier is the shared forbidden-op gate for both execution
    # engines: a program that passes with no (unconverted) forbidden
    # instructions left is marked safe for JIT translation; the
    # interpreter likewise consults Program.forbidden_pcs to skip its
    # per-instruction check.
    if not program.forbidden_pcs:
        program.jit_safe = True
    return report
