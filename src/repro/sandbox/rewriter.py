"""The sandboxer: Wahbe-style software-fault-isolation by rewriting.

Section III-B2: "we force all loads and stores to have user-level
addresses, using the code modification (sandboxing) techniques of Wahbe
et al."; "All indirect jumps are checked at runtime"; Section III-B3:
"For ASHs that contain loops, software checks at all backward jump
locations need to be inserted."

The rewriter takes a verified :class:`~repro.vcode.isa.Program` and
produces a new one with:

* a ``chkld``/``chkst`` guard before every load/store (unless the
  policy says the platform's hardware does it, as on the paper's x86
  segmentation port),
* a ``chkjmp`` guard (with address translation) before every ``jr``,
* a ``chkbudget`` probe at every backward-branch site when the budget
  policy is software-based,
* signed arithmetic converted to the unsigned equivalents.

Branch targets and the label map are relocated; a ``jump_map`` from
pre-sandbox label addresses to post-sandbox addresses is attached so
indirect jumps written against the original layout keep working.

The report counts the instructions the sandbox added — the number the
paper reports per handler (76 added to the 90-instruction remote
increment; 28 added to the 10-instruction remote write).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from ..vcode.isa import BRANCH_OPS, Insn, JUMP_OPS, Program
from .budget import BudgetPolicy
from .verifier import CONVERTIBLE_OPS, verify

__all__ = ["SandboxPolicy", "SandboxReport", "Sandboxer"]

_ACCESS_SIZE = {"ld8": 1, "ld16": 2, "ld32": 4, "st8": 1, "st16": 2, "st32": 4}


@dataclass(frozen=True)
class SandboxPolicy:
    """How to make a handler safe on this platform."""

    check_loads: bool = True
    check_stores: bool = True
    check_jumps: bool = True
    convert_signed: bool = True
    budget: BudgetPolicy = BudgetPolicy.TIMER
    #: x86-style port: segmentation hardware guards loads/stores, so no
    #: software checks are emitted ("in this implementation almost no
    #: software checks are needed").
    hardware_checks: bool = False

    def effective_check_loads(self) -> bool:
        return self.check_loads and not self.hardware_checks

    def effective_check_stores(self) -> bool:
        return self.check_stores and not self.hardware_checks


@dataclass
class SandboxReport:
    original_insns: int
    final_insns: int
    checks_inserted: int
    jumps_guarded: int
    budget_probes: int
    converted_signed: int

    @property
    def added_insns(self) -> int:
        return self.final_insns - self.original_insns


class Sandboxer:
    """Rewrites verified programs into sandboxed ones."""

    def __init__(self, policy: SandboxPolicy = SandboxPolicy()):
        self.policy = policy

    def sandbox(self, program: Program) -> tuple[Program, SandboxReport]:
        """Verify + rewrite; returns the safe program and a report."""
        verify(program, allow_convertible_signed=self.policy.convert_signed)
        policy = self.policy

        check_loads = policy.effective_check_loads()
        check_stores = policy.effective_check_stores()
        budget_probes_wanted = policy.budget is BudgetPolicy.BACKEDGE_CHECKS

        new_insns: list[Insn] = []
        old_to_new: dict[int, int] = {}
        checks = jumps = probes = converted = 0

        for old_pc, insn in enumerate(program.insns):
            old_to_new[old_pc] = len(new_insns)
            op = insn.op

            if op in CONVERTIBLE_OPS and policy.convert_signed:
                insn = dc_replace(insn, op=CONVERTIBLE_OPS[op])
                converted += 1
                op = insn.op

            if op.startswith("ld") and op in _ACCESS_SIZE and check_loads:
                new_insns.append(Insn(
                    "chkld", rs=insn.rs, imm=insn.imm, rt=_ACCESS_SIZE[op],
                ))
                checks += 1
            elif op.startswith("st") and op in _ACCESS_SIZE and check_stores:
                new_insns.append(Insn(
                    "chkst", rs=insn.rs, imm=insn.imm, rt=_ACCESS_SIZE[op],
                ))
                checks += 1
            elif op == "jr" and policy.check_jumps:
                new_insns.append(Insn("chkjmp", rs=insn.rs))
                jumps += 1
            elif (
                budget_probes_wanted
                and (op in BRANCH_OPS or op in JUMP_OPS)
                and insn.target is not None
                and insn.target <= old_pc
            ):
                new_insns.append(Insn("chkbudget"))
                probes += 1

            new_insns.append(insn)
        end_new = len(new_insns)

        # Relocate branch targets and labels.
        relocated: list[Insn] = []
        for insn in new_insns:
            if (insn.op in BRANCH_OPS or insn.op in JUMP_OPS) and insn.target is not None:
                relocated.append(
                    dc_replace(insn, target=old_to_new.get(insn.target, end_new))
                )
            else:
                relocated.append(insn)
        new_labels = {
            name: old_to_new.get(idx, end_new)
            for name, idx in program.labels.items()
        }
        jump_map = {
            idx: old_to_new.get(idx, end_new)
            for idx in program.labels.values()
        }

        sandboxed = Program(
            name=f"{program.name}.sandboxed",
            insns=relocated,
            labels=new_labels,
            persistent_regs=program.persistent_regs,
            sandboxed=True,
            jump_map=jump_map if policy.check_jumps else None,
        )
        report = SandboxReport(
            original_insns=len(program),
            final_insns=len(sandboxed),
            checks_inserted=checks,
            jumps_guarded=jumps,
            budget_probes=probes,
            converted_signed=converted,
        )
        return sandboxed, report
