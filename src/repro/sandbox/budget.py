"""Execution-time bounding strategies for handlers.

Section III-B3 describes three approaches, all implemented here:

1. **Static estimation** for loop-free handlers: "we can simply
   overestimate the effects of straight-line code to create overly
   pessimistic, but simple to implement estimations of execution time."
2. **Back-edge software checks** "at all backward jump locations" for
   handlers with loops (inserted by the rewriter as ``chkbudget``).
3. **Timers**: "Our prototype uses the third approach, aborting any ASH
   that attempts to use two clock ticks worth of time or more."  Timer
   setup and teardown cost about one microsecond each.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..hw.calibration import Calibration
from ..vcode.isa import Program, insn_cost

__all__ = [
    "BudgetPolicy",
    "BudgetAccount",
    "straightline_cycle_bound",
    "budget_cycles",
    "forced_abort_budget",
    "FORCED_ABORT_CYCLES",
]


class BudgetPolicy(enum.Enum):
    """How runtime is bounded for a downloaded handler."""

    #: loop-free only: prove a static bound at download time, no runtime cost
    STATIC_ESTIMATE = "static"
    #: insert software checks at backward branches
    BACKEDGE_CHECKS = "backedge"
    #: arm a hardware timer around the invocation (the paper's prototype)
    TIMER = "timer"


def straightline_cycle_bound(program: Program, cal: Calibration) -> int:
    """Pessimistic cycle bound for a loop-free program.

    Every instruction is assumed executed (no branch is taken early-out)
    and every load is assumed to miss — deliberately "overly
    pessimistic, but simple".
    """
    bound = 0
    for insn in program.insns:
        bound += insn_cost(insn, cal)
        if insn.op in ("ld8", "ld16", "ld32"):
            bound += cal.miss_penalty_cycles
    return bound


def budget_cycles(cal: Calibration) -> int:
    """The timer budget: two clock ticks, expressed in cycles."""
    return cal.us_to_cycles(cal.ash_budget_ticks * cal.tick_us)


#: default cycle budget for an injected mid-handler abort: large enough
#: that the handler demonstrably *starts* executing, small enough that
#: any real handler trips BudgetExceeded partway through
FORCED_ABORT_CYCLES = 8


def forced_abort_budget(cal: Calibration,
                        cycles: int = FORCED_ABORT_CYCLES) -> int:
    """A deliberately tiny cycle budget used by fault injection to force
    an involuntary abort *mid-handler* — the paper's two-clock-tick timer
    expiry, made to fire early and deterministically.  Clamped strictly
    below the real budget so the abort accounting is always the
    involuntary-abort path."""
    return max(1, min(cycles, budget_cycles(cal) - 1))


@dataclass
class BudgetAccount:
    """Runtime cycle accounting for one downloaded handler.

    Tracks every invocation's cycles against the abort budget so the
    telemetry layer (and ``kernel.stats()``) can report how close each
    handler runs to its bound — the tunability knob sPIN-style systems
    expose per handler.
    """

    budget: int                  #: the per-invocation cycle budget
    invocations: int = 0
    cycles_total: int = 0
    cycles_last: int = 0
    cycles_max: int = 0
    overruns: int = 0            #: invocations that hit/exceeded the budget

    def charge(self, cycles: int) -> int:
        """Record one invocation; returns the budget remaining after it."""
        self.invocations += 1
        self.cycles_last = cycles
        self.cycles_total += cycles
        if cycles > self.cycles_max:
            self.cycles_max = cycles
        if cycles >= self.budget:
            self.overruns += 1
        return self.budget - cycles

    @property
    def remaining_last(self) -> int:
        return self.budget - self.cycles_last

    def snapshot(self) -> dict:
        return {
            "budget_cycles": self.budget,
            "invocations": self.invocations,
            "cycles_total": self.cycles_total,
            "cycles_last": self.cycles_last,
            "cycles_max": self.cycles_max,
            "remaining_last": self.remaining_last,
            "overruns": self.overruns,
        }
