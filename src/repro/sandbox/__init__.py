"""Safety machinery: static verification, SFI rewriting, budgets."""

from .budget import BudgetPolicy, budget_cycles, straightline_cycle_bound
from .rewriter import SandboxPolicy, SandboxReport, Sandboxer
from .verifier import VerifyReport, has_loops, verify

__all__ = [
    "BudgetPolicy",
    "budget_cycles",
    "straightline_cycle_bound",
    "SandboxPolicy",
    "SandboxReport",
    "Sandboxer",
    "VerifyReport",
    "has_loops",
    "verify",
]
