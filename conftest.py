"""Pytest bootstrap: make the src layout importable without installation.

The canonical way to use the package is ``pip install -e .`` (or, on
machines without the ``wheel`` package, ``python setup.py develop``).
This shim additionally lets ``pytest`` run from a pristine checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
